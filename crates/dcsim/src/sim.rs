//! Discrete-event simulation of a leaf server queue.
//!
//! The paper models servers as M/M/1 queues analytically (Figure 17); this
//! module provides an event-driven simulator with Poisson arrivals and
//! exponential service so the closed forms in [`crate::queue`] can be
//! validated empirically, and so non-exponential service distributions
//! (e.g. the heavy-tailed QA latencies of Figure 8a) can be explored.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Service-time distribution of the simulated server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServiceDistribution {
    /// Exponential with the given mean (the M in M/M/1).
    Exponential {
        /// Mean service time in seconds.
        mean: f64,
    },
    /// Deterministic service time (M/D/1).
    Deterministic {
        /// Fixed service time in seconds.
        time: f64,
    },
    /// Two-point heavy-tail mix: `p_slow` of queries take `slow`, the rest
    /// take `fast` (QA's document-filter variability, Figure 8a/8c).
    Bimodal {
        /// Fast service time in seconds.
        fast: f64,
        /// Slow service time in seconds.
        slow: f64,
        /// Probability of the slow path.
        p_slow: f64,
    },
}

impl ServiceDistribution {
    /// Mean service time of the distribution.
    pub fn mean(&self) -> f64 {
        match *self {
            ServiceDistribution::Exponential { mean } => mean,
            ServiceDistribution::Deterministic { time } => time,
            ServiceDistribution::Bimodal { fast, slow, p_slow } => {
                fast * (1.0 - p_slow) + slow * p_slow
            }
        }
    }

    fn sample(&self, rng: &mut impl Rng) -> f64 {
        match *self {
            ServiceDistribution::Exponential { mean } => sample_exp(mean, rng),
            ServiceDistribution::Deterministic { time } => time,
            ServiceDistribution::Bimodal { fast, slow, p_slow } => {
                if rng.gen_bool(p_slow) {
                    slow
                } else {
                    fast
                }
            }
        }
    }
}

fn sample_exp(mean: f64, rng: &mut impl Rng) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

/// Result of one queue simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResult {
    /// Queries completed.
    pub completed: usize,
    /// Mean sojourn (queueing + service) time.
    pub mean_latency: f64,
    /// 95th-percentile sojourn time.
    pub p95_latency: f64,
    /// Maximum sojourn time observed.
    pub max_latency: f64,
    /// Fraction of simulated time the server was busy.
    pub utilization: f64,
}

/// Simulates a single-server FIFO queue with Poisson arrivals at rate
/// `lambda` (queries/sec) for `num_queries` queries.
///
/// # Panics
///
/// Panics if `lambda <= 0` or `num_queries == 0`.
pub fn simulate_queue(
    lambda: f64,
    service: ServiceDistribution,
    num_queries: usize,
    seed: u64,
) -> SimResult {
    assert!(lambda > 0.0, "arrival rate must be positive");
    assert!(num_queries > 0, "must simulate at least one query");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut clock = 0.0f64; // arrival clock
    let mut server_free_at = 0.0f64;
    let mut busy_time = 0.0f64;
    let mut latencies = Vec::with_capacity(num_queries);
    for _ in 0..num_queries {
        clock += sample_exp(1.0 / lambda, &mut rng);
        let start = clock.max(server_free_at);
        let svc = service.sample(&mut rng);
        let done = start + svc;
        busy_time += svc;
        server_free_at = done;
        latencies.push(done - clock);
    }
    latencies.sort_by(f64::total_cmp);
    let total_time = server_free_at.max(clock);
    SimResult {
        completed: num_queries,
        mean_latency: latencies.iter().sum::<f64>() / num_queries as f64,
        p95_latency: latencies[(num_queries as f64 * 0.95) as usize - 1],
        max_latency: *latencies.last().expect("non-empty"),
        utilization: busy_time / total_time,
    }
}

/// Simulates a cluster of `servers` identical FIFO servers fed by one
/// Poisson arrival stream (queries go to the earliest-free server, i.e.
/// an M/M/k-style central queue). Models a leaf pool of an accelerated
/// datacenter partition.
///
/// # Panics
///
/// Panics if `servers == 0`, `lambda <= 0`, or `num_queries == 0`.
pub fn simulate_cluster(
    servers: usize,
    lambda: f64,
    service: ServiceDistribution,
    num_queries: usize,
    seed: u64,
) -> SimResult {
    assert!(servers > 0, "need at least one server");
    assert!(lambda > 0.0, "arrival rate must be positive");
    assert!(num_queries > 0, "must simulate at least one query");
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xc105);
    let mut clock = 0.0f64;
    let mut free_at = vec![0.0f64; servers];
    let mut busy_time = 0.0f64;
    let mut latencies = Vec::with_capacity(num_queries);
    for _ in 0..num_queries {
        clock += sample_exp(1.0 / lambda, &mut rng);
        // Earliest-free server takes the query.
        let (idx, &earliest) = free_at
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty");
        let start = clock.max(earliest);
        let svc = service.sample(&mut rng);
        busy_time += svc;
        free_at[idx] = start + svc;
        latencies.push(start + svc - clock);
    }
    latencies.sort_by(f64::total_cmp);
    let end = free_at.iter().copied().fold(clock, f64::max);
    SimResult {
        completed: num_queries,
        mean_latency: latencies.iter().sum::<f64>() / num_queries as f64,
        p95_latency: latencies[(num_queries as f64 * 0.95) as usize - 1],
        max_latency: *latencies.last().expect("non-empty"),
        utilization: busy_time / (end * servers as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::Mm1;

    #[test]
    fn mm1_simulation_matches_closed_form() {
        // μ = 10/s, λ = 5/s → W = 1/(μ−λ) = 0.2 s.
        let service = ServiceDistribution::Exponential { mean: 0.1 };
        let sim = simulate_queue(5.0, service, 60_000, 42);
        let analytic = Mm1 { mu: 10.0 }.latency(5.0);
        let err = (sim.mean_latency - analytic).abs() / analytic;
        assert!(
            err < 0.07,
            "sim {:.3} vs analytic {analytic:.3}",
            sim.mean_latency
        );
        assert!(
            (sim.utilization - 0.5).abs() < 0.05,
            "rho {}",
            sim.utilization
        );
    }

    #[test]
    fn md1_beats_mm1_on_mean_latency() {
        // Deterministic service halves the queueing term (Pollaczek-
        // Khinchine): W_q(M/D/1) = W_q(M/M/1) / 2.
        let mm1 = simulate_queue(
            7.0,
            ServiceDistribution::Exponential { mean: 0.1 },
            60_000,
            1,
        );
        let md1 = simulate_queue(
            7.0,
            ServiceDistribution::Deterministic { time: 0.1 },
            60_000,
            1,
        );
        assert!(md1.mean_latency < mm1.mean_latency);
        // Queueing delay ratio ≈ 0.5.
        let wq_mm1 = mm1.mean_latency - 0.1;
        let wq_md1 = md1.mean_latency - 0.1;
        let ratio = wq_md1 / wq_mm1;
        assert!((0.4..0.65).contains(&ratio), "P-K ratio {ratio:.2}");
    }

    #[test]
    fn heavy_tail_inflates_p95() {
        // QA-like bimodal service (Figure 8a: 1.7 s to 35 s) versus an
        // exponential with the same mean: the tail hurts p95 dramatically.
        let bimodal = ServiceDistribution::Bimodal {
            fast: 1.7,
            slow: 35.0,
            p_slow: 0.1,
        };
        let mean = bimodal.mean();
        let lam = 0.05 / mean; // very low load isolates the service tail
        let heavy = simulate_queue(lam, bimodal, 20_000, 5);
        let light = simulate_queue(lam, ServiceDistribution::Exponential { mean }, 20_000, 5);
        assert!(heavy.p95_latency > light.p95_latency * 1.5);
    }

    #[test]
    fn latency_blows_up_near_saturation() {
        let service = ServiceDistribution::Exponential { mean: 0.1 };
        let relaxed = simulate_queue(3.0, service, 30_000, 9);
        let saturated = simulate_queue(9.5, service, 30_000, 9);
        assert!(saturated.mean_latency > relaxed.mean_latency * 5.0);
        assert!(saturated.utilization > 0.9);
    }

    #[test]
    fn cluster_with_one_server_matches_single_queue() {
        let service = ServiceDistribution::Exponential { mean: 0.1 };
        let single = simulate_queue(5.0, service, 20_000, 3);
        let cluster = simulate_cluster(1, 5.0, service, 20_000, 3);
        // Different RNG streams, so compare statistically.
        let err = (single.mean_latency - cluster.mean_latency).abs() / single.mean_latency;
        assert!(
            err < 0.1,
            "single {} vs cluster {}",
            single.mean_latency,
            cluster.mean_latency
        );
    }

    #[test]
    fn more_servers_cut_latency_at_fixed_load() {
        let service = ServiceDistribution::Exponential { mean: 0.1 };
        // λ = 18/s saturates 2 servers (capacity 20/s) but is light for 8.
        let small = simulate_cluster(2, 18.0, service, 40_000, 4);
        let large = simulate_cluster(8, 18.0, service, 40_000, 4);
        assert!(large.mean_latency < small.mean_latency / 2.0);
        assert!(large.p95_latency < small.p95_latency);
    }

    #[test]
    fn accelerated_pool_needs_fewer_servers_for_same_latency() {
        // A 10x-accelerated server (paper: GPU ASR) at the same aggregate
        // load matches the latency of a 10x-larger baseline pool.
        let lam = 80.0;
        let baseline = simulate_cluster(
            100,
            lam,
            ServiceDistribution::Exponential { mean: 1.0 },
            40_000,
            5,
        );
        let accelerated = simulate_cluster(
            10,
            lam,
            ServiceDistribution::Exponential { mean: 0.1 },
            40_000,
            5,
        );
        assert!(accelerated.mean_latency < baseline.mean_latency);
    }

    #[test]
    fn fig17_closed_form_matches_simulation() {
        // Figure 17's closed form: an S-x faster server at baseline load rho
        // absorbs (S - (1 - rho)) / rho more traffic at the same latency.
        use crate::queue::throughput_improvement_at_load;
        let s = 5.0; // speedup
        let rho = 0.6;
        let mu = 10.0;
        let lambda = rho * mu;
        let baseline = simulate_queue(
            lambda,
            ServiceDistribution::Exponential { mean: 1.0 / mu },
            80_000,
            21,
        );
        let improvement = throughput_improvement_at_load(s, rho);
        let accelerated = simulate_queue(
            lambda * improvement,
            ServiceDistribution::Exponential {
                mean: 1.0 / (s * mu),
            },
            80_000,
            22,
        );
        let err = (accelerated.mean_latency - baseline.mean_latency).abs() / baseline.mean_latency;
        assert!(
            err < 0.1,
            "baseline {:.4}s vs accelerated {:.4}s at {improvement:.2}x load",
            baseline.mean_latency,
            accelerated.mean_latency
        );
    }

    #[test]
    fn determinism_per_seed() {
        let service = ServiceDistribution::Exponential { mean: 0.05 };
        let a = simulate_queue(4.0, service, 5_000, 77);
        let b = simulate_queue(4.0, service, 5_000, 77);
        assert_eq!(a, b);
    }
}
