//! The scalability gap (paper Figures 1, 7a and 21).
//!
//! The gap is the machine-scaling factor a datacenter needs to serve IPA
//! queries at web-search throughput: the ratio of per-query compute between
//! the two workloads. Acceleration divides the gap by the mean query-latency
//! reduction (Figure 21: 165× → 16× on GPUs, → 10× on FPGAs).

/// The machine-scaling factor needed to serve IPA queries at a given ratio
/// of IPA-to-web-search query volume.
///
/// `sirius_latency` and `websearch_latency` are mean per-query single-core
/// compute times; `query_ratio` is (IPA queries)/(web-search queries).
///
/// # Panics
///
/// Panics if `websearch_latency <= 0`.
pub fn machines_ratio(sirius_latency: f64, websearch_latency: f64, query_ratio: f64) -> f64 {
    assert!(
        websearch_latency > 0.0,
        "web-search latency must be positive"
    );
    (sirius_latency / websearch_latency) * query_ratio
}

/// The scalability gap: machine scaling at query-volume parity
/// (paper: 15 s / 91 ms ≈ 165×).
pub fn scalability_gap(sirius_latency: f64, websearch_latency: f64) -> f64 {
    machines_ratio(sirius_latency, websearch_latency, 1.0)
}

/// The residual gap after acceleration (paper Figure 21): the original gap
/// divided by the mean query-latency reduction of the accelerated DC.
///
/// # Panics
///
/// Panics if `latency_reduction <= 0`.
pub fn bridged_gap(gap: f64, latency_reduction: f64) -> f64 {
    assert!(
        latency_reduction > 0.0,
        "latency reduction must be positive"
    );
    gap / latency_reduction
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_gap_is_about_165x() {
        // 15 s Sirius vs 91 ms Nutch web search.
        let gap = scalability_gap(15.0, 0.091);
        assert!((160.0..=170.0).contains(&gap), "gap {gap:.1}");
    }

    #[test]
    fn gap_scales_with_query_ratio() {
        assert!((machines_ratio(15.0, 0.091, 0.1) - 16.48).abs() < 0.1);
        assert!((machines_ratio(15.0, 0.091, 10.0) - 1648.0).abs() < 10.0);
    }

    #[test]
    fn acceleration_bridges_the_gap() {
        // Figure 21: 165x falls to ~16x (GPU, 10x reduction) and ~10x
        // (FPGA, 16x reduction).
        let gap = 165.0;
        assert!((bridged_gap(gap, 10.0) - 16.5).abs() < 0.1);
        assert!((bridged_gap(gap, 16.0) - 10.3).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "latency reduction must be positive")]
    fn zero_reduction_panics() {
        let _ = bridged_gap(165.0, 0.0);
    }
}
