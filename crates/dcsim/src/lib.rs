//! # sirius-dcsim
//!
//! Datacenter-level modeling for the Sirius reproduction (Hauswald et al.,
//! ASPLOS 2015): M/M/1 queueing (Figure 17), the Google TCO model
//! (Table 7, Figure 18), homogeneous and heterogeneous datacenter design
//! (Figure 19, Tables 8/9), query-level results (Figure 20), and the
//! scalability gap (Figures 7a and 21).

#![warn(missing_docs)]

pub mod cache;
pub mod compare;
pub mod design;
pub mod gap;
pub mod partition;
pub mod power;
pub mod queue;
pub mod sim;
pub mod tco;

pub use cache::{CacheComparison, CachePoint, CacheRow, CachedMm1};
pub use compare::{
    ClusterComparison, ClusterPoint, ClusterRow, ComparisonRow, MeasuredPoint, QueueComparison,
    ShedComparison, ShedPoint, ShedRow, StageMeasurement, TandemComparison, TandemStageRow,
};
pub use design::{
    design_space, heterogeneous_design, homogeneous_design, homogeneous_throughput_improvement,
    query_level_metrics, DesignPoint, Objective, QueryClass,
};
pub use queue::{mm1k_blocking_probability, throughput_improvement_at_load, Mm1};
pub use tco::{monthly_tco, normalized_dc_tco, ServerConfig, TcoParams};
