//! Concurrency gates for the bounded MPMC queue, focused on the properties
//! the serving runtime's telemetry relies on:
//!
//! 1. `len()`/`capacity()` probes (the queue-depth gauges) are safe to read
//!    concurrently with producers and consumers, and `len` never exceeds
//!    `capacity`.
//! 2. A retained probe `Sender` clone keeps the channel open — exactly the
//!    hazard the runtime's shutdown order must handle — and dropping it
//!    closes the channel.
//! 3. A seeded MPMC churn loop preserves per-producer FIFO order and
//!    delivers every item exactly once.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use sirius_par::queue::{bounded, TryRecvError};

#[test]
fn len_and_capacity_probes_are_safe_under_churn() {
    const ITEMS: usize = 2_000;
    const CAPACITY: usize = 8;
    let (tx, rx) = bounded::<usize>(CAPACITY);
    let probe = tx.clone();
    let done = Arc::new(AtomicBool::new(false));

    let prober = {
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut reads = 0usize;
            while !done.load(Ordering::Relaxed) {
                let len = probe.len();
                assert!(
                    len <= probe.capacity(),
                    "probe read len {len} > capacity {CAPACITY}"
                );
                reads += 1;
            }
            // The probe sender must be dropped here (end of scope) or the
            // channel would never close for the consumers below.
            reads
        })
    };

    let consumers: Vec<_> = (0..2)
        .map(|_| {
            let rx = rx.clone();
            std::thread::spawn(move || {
                let mut count = 0usize;
                while rx.recv().is_some() {
                    count += 1;
                }
                count
            })
        })
        .collect();
    drop(rx);

    let producers: Vec<_> = (0..2)
        .map(|_| {
            let tx = tx.clone();
            std::thread::spawn(move || {
                for i in 0..ITEMS / 2 {
                    tx.send(i).unwrap();
                }
            })
        })
        .collect();
    drop(tx);
    for p in producers {
        p.join().unwrap();
    }
    done.store(true, Ordering::Relaxed);
    let reads = prober.join().unwrap();
    assert!(reads > 0, "the probe thread observed the queue");

    let received: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
    assert_eq!(received, ITEMS, "churn must not lose or duplicate items");
}

#[test]
fn retained_probe_sender_keeps_the_channel_open() {
    let (tx, rx) = bounded::<u32>(4);
    let probe = tx.clone();
    tx.send(1).unwrap();
    drop(tx);

    // The data sender is gone, but the probe clone holds the channel open:
    // a blocked recv must NOT observe end-of-stream yet.
    assert_eq!(rx.recv(), Some(1));
    assert_eq!(
        rx.try_recv(),
        Err(TryRecvError::Empty),
        "empty but still open"
    );
    assert_eq!(probe.len(), 0);
    assert_eq!(probe.capacity(), 4);

    let waiter = std::thread::spawn(move || rx.recv());
    std::thread::sleep(Duration::from_millis(20));
    assert!(
        !waiter.is_finished(),
        "receiver must block while probe lives"
    );
    drop(probe);
    assert_eq!(
        waiter.join().unwrap(),
        None,
        "dropping the last (probe) sender closes the channel"
    );
}

#[test]
fn seeded_mpmc_churn_preserves_per_producer_order() {
    const PRODUCERS: u64 = 3;
    const PER_PRODUCER: u64 = 400;
    // A single consumer observes the global interleaving: items from any
    // one producer must arrive in that producer's send order.
    let (tx, rx) = bounded::<(u64, u64)>(5);
    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let tx = tx.clone();
            std::thread::spawn(move || {
                let mut rng = ChaCha8Rng::seed_from_u64(0xC0FFEE + p);
                for seq in 0..PER_PRODUCER {
                    tx.send((p, seq)).unwrap();
                    // Seeded jitter so interleavings vary between producers
                    // but the run stays reproducible.
                    if rng.gen_range(0..8u32) == 0 {
                        std::thread::yield_now();
                    }
                }
            })
        })
        .collect();
    drop(tx);

    let mut next_seq = [0u64; PRODUCERS as usize];
    let mut total = 0u64;
    while let Some((p, seq)) = rx.recv() {
        assert_eq!(
            seq, next_seq[p as usize],
            "producer {p} items arrived out of order"
        );
        next_seq[p as usize] += 1;
        total += 1;
    }
    assert_eq!(total, PRODUCERS * PER_PRODUCER);
    for p in producers {
        p.join().unwrap();
    }
}
