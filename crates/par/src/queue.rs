//! Bounded multi-producer multi-consumer channel.
//!
//! The staged service runtime (`sirius-server`) connects per-service worker
//! pools with bounded queues: [`Sender::try_send`] is the shed-on-full
//! admission-control primitive, [`Sender::send`] blocks and so propagates
//! back-pressure between interior stages, and cloneable [`Receiver`]s let a
//! pool of workers drain one queue. Closing is cooperative: when every
//! `Sender` is gone, blocked receivers drain the remaining items and then
//! observe end-of-stream, which is what makes graceful shutdown a simple
//! cascade of channel closures.
//!
//! Built on `Mutex` + `Condvar` only (the build is offline, so no crossbeam);
//! at the queue depths and worker counts a serving pipeline uses, lock
//! contention is irrelevant next to millisecond-scale stage service times.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Creates a bounded MPMC channel with room for `capacity` queued items
/// (clamped to at least 1).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        capacity: capacity.max(1),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender(Arc::clone(&shared)), Receiver(shared))
}

/// Why [`Sender::try_send`] could not enqueue; the rejected value comes back.
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The queue is at capacity (the admission-control shed signal).
    Full(T),
    /// Every receiver is gone; the value can never be delivered.
    Disconnected(T),
}

/// Returned by [`Sender::send`] when every receiver is gone; the undelivered
/// value comes back.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Why [`Receiver::try_recv`] returned no value. A batch collector draining
/// opportunistically needs the distinction: `Empty` means "stop collecting
/// for now", `Disconnected` means "flush and exit".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The queue is currently empty but senders remain; items may arrive.
    Empty,
    /// Every sender is gone and the queue is drained; no item will ever
    /// arrive again.
    Disconnected,
}

/// Why [`Receiver::recv_timeout`] returned no value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No item arrived within the timeout; senders remain.
    Timeout,
    /// Every sender is gone and the queue is drained.
    Disconnected,
}

/// The producing half. Cloneable; the channel closes when the last clone
/// drops.
pub struct Sender<T>(Arc<Shared<T>>);

/// The consuming half. Cloneable, so a pool of workers can share one queue.
pub struct Receiver<T>(Arc<Shared<T>>);

impl<T> Sender<T> {
    /// Enqueues without blocking, shedding the value if the queue is full.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut inner = self.0.inner.lock().expect("channel lock");
        if inner.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if inner.queue.len() >= self.0.capacity {
            return Err(TrySendError::Full(value));
        }
        inner.queue.push_back(value);
        drop(inner);
        self.0.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues, blocking while the queue is full (back-pressure). Fails only
    /// when every receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.0.inner.lock().expect("channel lock");
        loop {
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            if inner.queue.len() < self.0.capacity {
                inner.queue.push_back(value);
                drop(inner);
                self.0.not_empty.notify_one();
                return Ok(());
            }
            inner = self.0.not_full.wait(inner).expect("channel lock");
        }
    }

    /// Items currently queued (a racy snapshot, for load reporting).
    pub fn len(&self) -> usize {
        self.0.inner.lock().expect("channel lock").queue.len()
    }

    /// Whether the queue is currently empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed queue capacity.
    pub fn capacity(&self) -> usize {
        self.0.capacity
    }
}

impl<T> Receiver<T> {
    /// Dequeues, blocking while the queue is empty. Returns `None` once the
    /// channel is closed (every sender dropped) *and* drained.
    pub fn recv(&self) -> Option<T> {
        let mut inner = self.0.inner.lock().expect("channel lock");
        loop {
            if let Some(value) = inner.queue.pop_front() {
                drop(inner);
                self.0.not_full.notify_one();
                return Some(value);
            }
            if inner.senders == 0 {
                return None;
            }
            inner = self.0.not_empty.wait(inner).expect("channel lock");
        }
    }

    /// Dequeues without blocking.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] while the queue is empty but still open;
    /// [`TryRecvError::Disconnected`] once every sender is gone *and* the
    /// queue is drained (matching [`Receiver::recv`] returning `None`).
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.0.inner.lock().expect("channel lock");
        match inner.queue.pop_front() {
            Some(value) => {
                drop(inner);
                self.0.not_full.notify_one();
                Ok(value)
            }
            None if inner.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Dequeues, blocking up to `timeout` while the queue is empty — the
    /// drain-with-deadline primitive a batch collector needs to honour its
    /// `max_delay` flush rule.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] if no item arrived in time;
    /// [`RecvTimeoutError::Disconnected`] once the channel is closed (every
    /// sender dropped) and drained.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now().checked_add(timeout);
        let mut inner = self.0.inner.lock().expect("channel lock");
        loop {
            if let Some(value) = inner.queue.pop_front() {
                drop(inner);
                self.0.not_full.notify_one();
                return Ok(value);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            // A timeout too far out to represent can never pass; degrade to
            // an untimed wait instead of overflowing `Instant` arithmetic.
            let Some(deadline) = deadline else {
                inner = self.0.not_empty.wait(inner).expect("channel lock");
                continue;
            };
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .0
                .not_empty
                .wait_timeout(inner, deadline - now)
                .expect("channel lock");
            inner = guard;
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.0.inner.lock().expect("channel lock").senders += 1;
        Sender(Arc::clone(&self.0))
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.0.inner.lock().expect("channel lock").receivers += 1;
        Receiver(Arc::clone(&self.0))
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut inner = self.0.inner.lock().expect("channel lock");
            inner.senders -= 1;
            inner.senders
        };
        if remaining == 0 {
            // Wake blocked receivers so they observe end-of-stream.
            self.0.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut inner = self.0.inner.lock().expect("channel lock");
            inner.receivers -= 1;
            inner.receivers
        };
        if remaining == 0 {
            // Wake blocked senders so they observe disconnection.
            self.0.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_send_sheds_when_full_and_recovers_after_recv() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.try_recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), Some(3));
        assert!(tx.is_empty());
        assert_eq!(tx.capacity(), 2);
    }

    #[test]
    fn receivers_drain_then_observe_close() {
        let (tx, rx) = bounded(8);
        tx.try_send("a").unwrap();
        tx.try_send("b").unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some("a"));
        assert_eq!(rx.recv(), Some("b"));
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_blocks_until_a_slot_frees() {
        let (tx, rx) = bounded(1);
        tx.send(0u32).unwrap();
        let sender = std::thread::spawn(move || {
            tx.send(1).unwrap();
            tx.send(2).unwrap();
        });
        let mut got = Vec::new();
        for _ in 0..3 {
            got.push(rx.recv().unwrap());
        }
        sender.join().unwrap();
        assert_eq!(got, vec![0, 1, 2]);
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn send_fails_when_all_receivers_gone() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
        assert_eq!(tx.try_send(8), Err(TrySendError::Disconnected(8)));
    }

    #[test]
    fn blocked_sender_wakes_on_receiver_drop() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let sender = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(rx);
        assert_eq!(sender.join().unwrap(), Err(SendError(2)));
    }

    #[test]
    fn mpmc_delivers_every_item_exactly_once() {
        const ITEMS: usize = 500;
        let (tx, rx) = bounded(4);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        let producers: Vec<_> = (0..2)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..ITEMS / 2 {
                        tx.send(p * (ITEMS / 2) + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..ITEMS).collect::<Vec<_>>());
    }

    #[test]
    fn try_recv_distinguishes_empty_from_disconnected() {
        let (tx, rx) = bounded(4);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.try_send(9).unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.try_send(10).unwrap();
        drop(tx);
        // Closed but not drained: the queued item still comes out first.
        assert_eq!(rx.try_recv(), Ok(10));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_returns_queued_item_immediately() {
        let (tx, rx) = bounded(2);
        tx.try_send(5).unwrap();
        let begun = std::time::Instant::now();
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)), Ok(5));
        assert!(begun.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn recv_timeout_times_out_on_an_open_empty_queue() {
        let (tx, rx) = bounded::<u32>(2);
        let begun = std::time::Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(30)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(begun.elapsed() >= Duration::from_millis(30));
        drop(tx);
    }

    #[test]
    fn recv_timeout_wakes_on_a_late_send() {
        let (tx, rx) = bounded(2);
        let sender = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx.send(77).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)), Ok(77));
        sender.join().unwrap();
    }

    #[test]
    fn recv_timeout_observes_close_without_waiting_out_the_timeout() {
        let (tx, rx) = bounded::<u32>(2);
        let closer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            drop(tx);
        });
        let begun = std::time::Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(30)),
            Err(RecvTimeoutError::Disconnected)
        );
        assert!(begun.elapsed() < Duration::from_secs(30));
        closer.join().unwrap();
    }

    #[test]
    fn recv_timeout_drains_before_reporting_disconnect() {
        let (tx, rx) = bounded(4);
        tx.try_send("x").unwrap();
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok("x"));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn recv_timeout_near_duration_max_degrades_to_untimed_wait() {
        // Regression guard: `Instant::now() + Duration::MAX` overflows; an
        // unrepresentable deadline must wait untimed, not panic.
        let (tx, rx) = bounded(1);
        let sender = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx.send(1u8).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::MAX), Ok(1));
        sender.join().unwrap();
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let (tx, rx) = bounded(0);
        assert_eq!(tx.capacity(), 1);
        tx.try_send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.recv(), Some(1));
    }
}
