//! # sirius-par
//!
//! Data-parallel execution strategies for the Sirius services and the
//! Sirius Suite kernels.
//!
//! The paper's common porting methodology "exploit\[s\] the large amount of
//! data-level parallelism available throughout the processing of a single
//! IPA query" (Section 4.3): each pthread owns a range of the data and
//! synchronizes only at the end. [`chunked_map`] reproduces exactly that.
//! [`interleaved_map`] reproduces the Phi tuning the paper describes for the
//! stemmer ("switching from allocating a range of data per thread to
//! interlaced array accesses"), and [`dynamic_map`] is a work-queue variant
//! used by the tile-based feature-extraction port.
//!
//! Beyond the original `u64`-checksum reductions, this crate provides the
//! result-collecting variants ([`map_collect`] and the per-strategy
//! `*_collect` functions) that the live services need: scored frames,
//! descriptors and tag sequences come back in index order, **bit-identical**
//! to the serial loop at any thread count and under every strategy. An
//! [`ExecPolicy`] bundles the thread count and strategy so a single knob
//! plumbs through speech, vision, NLP and the end-to-end pipeline.

#![warn(missing_docs)]

pub mod queue;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

/// How work items are assigned to threads (paper Section 4.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Strategy {
    /// One contiguous range per thread — the paper's pthread port.
    #[default]
    Chunked,
    /// Strided assignment: thread `t` takes `t, t + T, t + 2T, ...` — the
    /// paper's Phi stemmer tuning ("interlaced array accesses").
    Interleaved,
    /// Work-queue: threads claim the next unprocessed index. Balances
    /// irregular per-item cost (image tiles with varying keypoint density).
    Dynamic,
}

impl Strategy {
    /// All strategies, for equivalence sweeps.
    pub const ALL: [Strategy; 3] = [Strategy::Chunked, Strategy::Interleaved, Strategy::Dynamic];
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Strategy::Chunked => f.write_str("chunked"),
            Strategy::Interleaved => f.write_str("interleaved"),
            Strategy::Dynamic => f.write_str("dynamic"),
        }
    }
}

/// The multicore execution knob plumbed through every Sirius service.
///
/// `threads == 1` is the serial fallback: every code path degenerates to
/// the plain sequential loop, so results are bit-identical by construction
/// (and remain bit-identical at higher thread counts because all
/// collecting variants write results in index order and no floating-point
/// reduction order changes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExecPolicy {
    /// Worker threads to use (clamped to at least 1).
    pub threads: usize,
    /// Work-assignment strategy.
    pub strategy: Strategy,
}

impl Default for ExecPolicy {
    fn default() -> Self {
        Self::serial()
    }
}

impl ExecPolicy {
    /// The single-threaded baseline policy.
    pub const fn serial() -> Self {
        Self {
            threads: 1,
            strategy: Strategy::Chunked,
        }
    }

    /// A policy with `threads` workers and the default chunked strategy.
    pub const fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            strategy: Strategy::Chunked,
        }
    }

    /// A policy with an explicit strategy.
    pub const fn new(threads: usize, strategy: Strategy) -> Self {
        Self { threads, strategy }
    }

    /// Effective worker count for `n` items: at least 1, at most one
    /// worker per item (never spawn a thread that would own no work).
    pub fn effective_threads(&self, n: usize) -> usize {
        self.threads.clamp(1, n.max(1))
    }

    /// Whether this policy degenerates to the serial loop for `n` items.
    pub fn is_serial(&self, n: usize) -> bool {
        self.effective_threads(n) <= 1 || n == 0
    }

    /// Applies `f` to every index in `0..n` under this policy, collecting
    /// results in index order. Output is bit-identical to
    /// `(0..n).map(f).collect()` for every thread count and strategy.
    pub fn map_collect<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        map_collect(n, *self, f)
    }

    /// Applies `f` to every element of `items` under this policy, collecting
    /// results in item order. The sparse-work counterpart of
    /// [`ExecPolicy::map_collect`]: lazy scorers fan out over the *active*
    /// work items (beam-surviving states) rather than a dense index range.
    pub fn map_slice_collect<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync,
    {
        map_collect(items.len(), *self, |i| f(&items[i]))
    }
}

/// Applies `f` to `0..n` under `policy`, collecting results in index order.
pub fn map_collect<T, F>(n: usize, policy: ExecPolicy, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = policy.effective_threads(n);
    if threads <= 1 || n == 0 {
        return (0..n).map(f).collect();
    }
    match policy.strategy {
        Strategy::Chunked => chunked_collect(n, threads, f),
        Strategy::Interleaved => interleaved_collect(n, threads, f),
        Strategy::Dynamic => dynamic_collect(n, threads, f),
    }
}

/// Collects per-index results into a vector, in index order, using chunked
/// parallelism. For kernels whose output (not just a checksum) is needed.
pub fn chunked_collect<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 || n == 0 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    // `chunks_mut` yields only non-empty slices, so no worker is spawned
    // for an empty range even when `threads` does not divide `n`.
    let slots: Vec<&mut [Option<T>]> = out.chunks_mut(chunk).collect();
    std::thread::scope(|scope| {
        for (t, slot) in slots.into_iter().enumerate() {
            let f = &f;
            scope.spawn(move || {
                let lo = t * chunk;
                for (j, cell) in slot.iter_mut().enumerate() {
                    *cell = Some(f(lo + j));
                }
            });
        }
    });
    out.into_iter()
        .map(|x| x.expect("all slots filled"))
        .collect()
}

/// Index-ordered collection with strided (interleaved) assignment.
pub fn interleaved_collect<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 || n == 0 {
        return (0..n).map(f).collect();
    }
    // Each worker owns stride class `t`; per-worker results come back in
    // stride order and are interleaved back into index order at the end.
    let per_thread: Vec<Vec<T>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let f = &f;
                scope.spawn(move || (t..n).step_by(threads).map(f).collect::<Vec<T>>())
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (t, results) in per_thread.into_iter().enumerate() {
        for (j, value) in results.into_iter().enumerate() {
            out[t + j * threads] = Some(value);
        }
    }
    out.into_iter()
        .map(|x| x.expect("all slots filled"))
        .collect()
}

/// Index-ordered collection with work-queue scheduling.
pub fn dynamic_collect<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 || n == 0 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut claimed: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let f = &f;
                let next = &next;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for local in claimed.iter_mut() {
        for (i, value) in local.drain(..) {
            out[i] = Some(value);
        }
    }
    out.into_iter()
        .map(|x| x.expect("all slots filled"))
        .collect()
}

/// Applies `f` to every index in `0..n`, splitting the range into one
/// contiguous chunk per thread (the paper's pthread strategy). Results are
/// combined with `u64::wrapping_add`, which is order-independent.
pub fn chunked_map<F>(n: usize, threads: usize, f: F) -> u64
where
    F: Fn(usize) -> u64 + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 || n == 0 {
        return (0..n).fold(0u64, |acc, i| acc.wrapping_add(f(i)));
    }
    let chunk = n.div_ceil(threads);
    // ceil(n / chunk) workers cover 0..n with no empty trailing ranges.
    let workers = n.div_ceil(chunk);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|t| {
                let f = &f;
                scope.spawn(move || {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(n);
                    (lo..hi).fold(0u64, |acc, i| acc.wrapping_add(f(i)))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .fold(0u64, u64::wrapping_add)
    })
}

/// Like [`chunked_map`] but with an interleaved (strided) index assignment:
/// thread `t` processes indices `t, t + threads, t + 2*threads, ...`.
pub fn interleaved_map<F>(n: usize, threads: usize, f: F) -> u64
where
    F: Fn(usize) -> u64 + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 || n == 0 {
        return (0..n).fold(0u64, |acc, i| acc.wrapping_add(f(i)));
    }
    std::thread::scope(|scope| {
        // threads <= n, so every stride class t..n is non-empty.
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let f = &f;
                scope.spawn(move || {
                    (t..n)
                        .step_by(threads)
                        .fold(0u64, |acc, i| acc.wrapping_add(f(i)))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .fold(0u64, u64::wrapping_add)
    })
}

/// Work-queue scheduling: threads repeatedly claim the next unprocessed
/// index. Balances irregular per-item cost (e.g. image tiles with different
/// keypoint densities).
pub fn dynamic_map<F>(n: usize, threads: usize, f: F) -> u64
where
    F: Fn(usize) -> u64 + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 || n == 0 {
        return (0..n).fold(0u64, |acc, i| acc.wrapping_add(f(i)));
    }
    let next = AtomicUsize::new(0);
    let total = Mutex::new(0u64);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let f = &f;
            let next = &next;
            let total = &total;
            scope.spawn(move || {
                let mut local = 0u64;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local = local.wrapping_add(f(i));
                }
                let mut guard = total.lock().expect("no panics while locked");
                *guard = guard.wrapping_add(local);
            });
        }
    });
    total.into_inner().expect("no panics while locked")
}

/// Channel pipeline: a producer feeds indices to `threads` consumers over a
/// shared queue. Demonstrates the producer/consumer layout some accelerator
/// hosts use; results are checksum-combined like the other strategies.
pub fn channel_map<F>(n: usize, threads: usize, f: F) -> u64
where
    F: Fn(usize) -> u64 + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 || n == 0 {
        return (0..n).fold(0u64, |acc, i| acc.wrapping_add(f(i)));
    }
    let (tx, rx) = mpsc::sync_channel::<usize>(threads * 4);
    let rx = Mutex::new(rx);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let f = &f;
                let rx = &rx;
                scope.spawn(move || {
                    let mut local = 0u64;
                    loop {
                        // std's Receiver is single-consumer; sharing it
                        // behind a mutex gives the multi-consumer queue
                        // crossbeam provided.
                        let msg = rx.lock().expect("receiver lock").recv();
                        match msg {
                            Ok(i) => local = local.wrapping_add(f(i)),
                            Err(_) => break,
                        }
                    }
                    local
                })
            })
            .collect();
        for i in 0..n {
            tx.send(i).expect("consumers alive");
        }
        drop(tx);
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .fold(0u64, u64::wrapping_add)
    })
}

/// Order-independent checksum of a float, for validating parallel ports
/// against the sequential baseline.
#[inline]
pub fn checksum_f32(x: f32) -> u64 {
    u64::from(x.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(i: usize) -> u64 {
        (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }

    #[test]
    fn all_strategies_agree_with_sequential() {
        let expect: u64 = (0..1000).map(work).fold(0u64, u64::wrapping_add);
        for threads in [1, 2, 3, 8] {
            assert_eq!(
                chunked_map(1000, threads, work),
                expect,
                "chunked {threads}"
            );
            assert_eq!(
                interleaved_map(1000, threads, work),
                expect,
                "interleaved {threads}"
            );
            assert_eq!(
                dynamic_map(1000, threads, work),
                expect,
                "dynamic {threads}"
            );
            assert_eq!(
                channel_map(1000, threads, work),
                expect,
                "channel {threads}"
            );
        }
    }

    #[test]
    fn empty_range() {
        assert_eq!(chunked_map(0, 4, work), 0);
        assert_eq!(interleaved_map(0, 4, work), 0);
        assert_eq!(dynamic_map(0, 4, work), 0);
        assert_eq!(channel_map(0, 4, work), 0);
        assert!(chunked_collect(0, 4, |i| i).is_empty());
        assert!(interleaved_collect(0, 4, |i| i).is_empty());
        assert!(dynamic_collect(0, 4, |i| i).is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        assert_eq!(
            chunked_map(3, 64, work),
            (0..3).map(work).fold(0u64, u64::wrapping_add)
        );
        assert_eq!(
            interleaved_collect(3, 64, work),
            vec![work(0), work(1), work(2)]
        );
    }

    #[test]
    fn chunked_map_skips_empty_trailing_chunks() {
        // 9 items over 8 threads: chunk = 2, so only 5 workers have work.
        // All items must still be covered exactly once.
        let expect: u64 = (0..9).map(work).fold(0u64, u64::wrapping_add);
        assert_eq!(chunked_map(9, 8, work), expect);
        // 11 items over 4 threads: chunk = 3, last worker gets 2 items.
        let expect: u64 = (0..11).map(work).fold(0u64, u64::wrapping_add);
        assert_eq!(chunked_map(11, 4, work), expect);
    }

    #[test]
    fn collect_preserves_order() {
        let expect: Vec<usize> = (0..100).map(|i| i * 2).collect();
        for threads in [1, 2, 3, 7, 8] {
            assert_eq!(chunked_collect(100, threads, |i| i * 2), expect);
            assert_eq!(interleaved_collect(100, threads, |i| i * 2), expect);
            assert_eq!(dynamic_collect(100, threads, |i| i * 2), expect);
        }
    }

    #[test]
    fn map_collect_matches_serial_for_all_policies() {
        let serial: Vec<u64> = (0..257).map(work).collect();
        for strategy in Strategy::ALL {
            for threads in [1, 2, 3, 8] {
                let policy = ExecPolicy::new(threads, strategy);
                assert_eq!(
                    policy.map_collect(257, work),
                    serial,
                    "{strategy} x{threads}"
                );
            }
        }
    }

    #[test]
    fn policy_accessors() {
        let p = ExecPolicy::serial();
        assert!(p.is_serial(100));
        assert_eq!(p.effective_threads(100), 1);
        let p = ExecPolicy::with_threads(8);
        assert_eq!(p.effective_threads(3), 3);
        assert_eq!(p.effective_threads(0), 1);
        assert!(p.is_serial(0));
        assert!(p.is_serial(1));
        assert!(!p.is_serial(2));
        assert_eq!(ExecPolicy::default(), ExecPolicy::serial());
        assert_eq!(format!("{}", Strategy::Interleaved), "interleaved");
    }

    #[test]
    fn map_slice_collect_matches_serial_map() {
        let items: Vec<u64> = (0..97).map(work).collect();
        let serial: Vec<u64> = items.iter().map(|x| x.wrapping_mul(3)).collect();
        for strategy in Strategy::ALL {
            for threads in [1, 2, 8] {
                let policy = ExecPolicy::new(threads, strategy);
                assert_eq!(
                    policy.map_slice_collect(&items, |x| x.wrapping_mul(3)),
                    serial,
                    "{strategy} x{threads}"
                );
            }
        }
        assert!(ExecPolicy::serial()
            .map_slice_collect::<u64, u64, _>(&[], |x| *x)
            .is_empty());
    }

    #[test]
    fn checksum_is_order_independent() {
        let a = checksum_f32(1.5).wrapping_add(checksum_f32(-2.25));
        let b = checksum_f32(-2.25).wrapping_add(checksum_f32(1.5));
        assert_eq!(a, b);
    }
}
