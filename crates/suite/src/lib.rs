//! # sirius-suite
//!
//! Sirius Suite: the seven computational bottlenecks the paper extracts from
//! the end-to-end Sirius pipeline (Table 4), "comprising 92% of the cycles
//! consumed by Sirius", each with a single-threaded baseline and a real
//! multicore data-parallel port (the paper's pthread CMP methodology,
//! Section 4.3.1).
//!
//! | Service | Kernel | Data granularity |
//! |---------|--------|------------------|
//! | ASR | GMM | each feature vector's HMM-state scores |
//! | ASR | DNN | each forward pass (matrix multiplication) |
//! | QA  | Stemmer | each individual word |
//! | QA  | Regex | each regex-sentence pair |
//! | QA  | CRF | each sentence |
//! | IMM | FE | each image tile |
//! | IMM | FD | each keypoint |
//!
//! # Example
//!
//! ```
//! use sirius_suite::{standard_suite, measure};
//!
//! let suite = standard_suite(0.05, 42); // tiny scale for the doctest
//! for kernel in &suite {
//!     let m = measure(kernel.as_ref(), 2, 1);
//!     assert!(m.parallel_time.as_nanos() > 0, "{}", m.name);
//! }
//! ```

#![warn(missing_docs)]

pub mod kernels;
pub mod parallel;
pub mod wordlist;

use std::time::{Duration, Instant};

/// The Sirius service a kernel belongs to (paper Table 4, column 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Service {
    /// Automatic speech recognition.
    Asr,
    /// Question answering.
    Qa,
    /// Image matching.
    Imm,
}

impl std::fmt::Display for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Service::Asr => f.write_str("ASR"),
            Service::Qa => f.write_str("QA"),
            Service::Imm => f.write_str("IMM"),
        }
    }
}

/// A Sirius Suite kernel: a self-contained workload with a sequential
/// baseline and a multicore port.
pub trait Kernel: Send + Sync {
    /// Kernel name as used in the paper ("GMM", "DNN", "Stemmer", ...).
    fn name(&self) -> &'static str;
    /// Owning service.
    fn service(&self) -> Service;
    /// Baseline implementation origin (paper Table 4, column 3).
    fn baseline_origin(&self) -> &'static str;
    /// Data granularity of the parallel port (paper Table 4, column 5).
    fn granularity(&self) -> &'static str;
    /// Number of parallel work items in the input set.
    fn items(&self) -> usize;
    /// Runs the single-threaded baseline; returns an order-independent
    /// checksum of the results.
    fn run_baseline(&self) -> u64;
    /// Runs the multicore port with `threads` threads.
    fn run_parallel(&self, threads: usize) -> u64;
    /// Whether the parallel port must produce a bit-identical checksum.
    /// Tiled feature extraction is allowed to differ (paper Section 4.3.1
    /// notes tiling changes the keypoint set).
    fn exact(&self) -> bool {
        true
    }
}

/// Timing of one kernel at a fixed thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Kernel name.
    pub name: &'static str,
    /// Owning service.
    pub service: Service,
    /// Work items processed.
    pub items: usize,
    /// Best-of-`repeats` sequential time.
    pub baseline_time: Duration,
    /// Best-of-`repeats` parallel time.
    pub parallel_time: Duration,
    /// Threads used for the parallel port.
    pub threads: usize,
    /// Whether the parallel checksum matched the baseline (always reported;
    /// only meaningful when [`Kernel::exact`]).
    pub checksum_match: bool,
}

impl Measurement {
    /// Multicore speedup over the single-threaded baseline.
    pub fn speedup(&self) -> f64 {
        self.baseline_time.as_secs_f64() / self.parallel_time.as_secs_f64().max(1e-12)
    }
}

/// Measures a kernel: runs baseline and parallel `repeats` times each and
/// keeps the fastest of each.
pub fn measure(kernel: &dyn Kernel, threads: usize, repeats: usize) -> Measurement {
    let repeats = repeats.max(1);
    let mut baseline_time = Duration::MAX;
    let mut parallel_time = Duration::MAX;
    let mut base_sum = 0u64;
    let mut par_sum = 0u64;
    for _ in 0..repeats {
        let t = Instant::now();
        base_sum = kernel.run_baseline();
        baseline_time = baseline_time.min(t.elapsed());
        let t = Instant::now();
        par_sum = kernel.run_parallel(threads);
        parallel_time = parallel_time.min(t.elapsed());
    }
    Measurement {
        name: kernel.name(),
        service: kernel.service(),
        items: kernel.items(),
        baseline_time,
        parallel_time,
        threads,
        checksum_match: !kernel.exact() || base_sum == par_sum,
    }
}

/// Builds all seven kernels at the given input scale (1.0 ≈ a few hundred
/// milliseconds of baseline work per kernel on a laptop-class core; the
/// paper-sized inputs are reached around scale 20).
pub fn standard_suite(scale: f64, seed: u64) -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(kernels::gmm::GmmKernel::generate(scale, seed)),
        Box::new(kernels::dnn::DnnKernel::generate(scale, seed ^ 1)),
        Box::new(kernels::stemmer::StemmerKernel::generate(scale, seed ^ 2)),
        Box::new(kernels::regex::RegexKernel::generate(scale, seed ^ 3)),
        Box::new(kernels::crf::CrfKernel::generate(scale, seed ^ 4)),
        Box::new(kernels::fe::FeKernel::generate(scale, seed ^ 5)),
        Box::new(kernels::fd::FdKernel::generate(scale, seed ^ 6)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_seven_kernels_with_table4_names() {
        let suite = standard_suite(0.02, 1);
        let names: Vec<&str> = suite.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            vec!["GMM", "DNN", "Stemmer", "Regex", "CRF", "FE", "FD"]
        );
    }

    #[test]
    fn parallel_ports_validate_against_baselines() {
        for kernel in standard_suite(0.02, 2) {
            let base = kernel.run_baseline();
            for threads in [1, 2, 4] {
                let par = kernel.run_parallel(threads);
                if kernel.exact() {
                    assert_eq!(base, par, "{} at {threads} threads", kernel.name());
                }
            }
        }
    }

    #[test]
    fn measurement_reports_speedup() {
        let suite = standard_suite(0.02, 3);
        let m = measure(suite[2].as_ref(), 2, 1);
        assert_eq!(m.name, "Stemmer");
        assert!(m.checksum_match);
        assert!(m.speedup() > 0.0);
        assert!(m.items > 0);
    }

    #[test]
    fn kernels_are_deterministic_per_seed() {
        let a = standard_suite(0.02, 9);
        let b = standard_suite(0.02, 9);
        for (ka, kb) in a.iter().zip(&b) {
            assert_eq!(ka.run_baseline(), kb.run_baseline(), "{}", ka.name());
        }
    }

    #[test]
    fn table4_metadata_matches_the_paper() {
        let suite = standard_suite(0.02, 10);
        let by_name = |n: &str| {
            suite
                .iter()
                .find(|k| k.name() == n)
                .unwrap_or_else(|| panic!("kernel {n}"))
        };
        assert_eq!(by_name("GMM").baseline_origin(), "CMU Sphinx");
        assert_eq!(by_name("DNN").baseline_origin(), "RWTH RASR");
        assert_eq!(by_name("Stemmer").baseline_origin(), "Porter");
        assert_eq!(by_name("Regex").baseline_origin(), "SLRE");
        assert_eq!(by_name("CRF").baseline_origin(), "CRFsuite");
        assert_eq!(by_name("FE").baseline_origin(), "SURF");
        assert_eq!(by_name("FD").baseline_origin(), "SURF");
        assert_eq!(by_name("Stemmer").granularity(), "for each individual word");
        assert_eq!(
            by_name("Regex").granularity(),
            "for each regex-sentence pair"
        );
        assert_eq!(by_name("FE").granularity(), "for each image tile");
        assert_eq!(by_name("FD").granularity(), "for each keypoint");
    }

    #[test]
    fn services_match_table4() {
        let suite = standard_suite(0.02, 4);
        let services: Vec<Service> = suite.iter().map(|k| k.service()).collect();
        assert_eq!(
            services,
            vec![
                Service::Asr,
                Service::Asr,
                Service::Qa,
                Service::Qa,
                Service::Qa,
                Service::Imm,
                Service::Imm
            ]
        );
    }
}
