//! Data-parallel execution strategies for the Sirius Suite kernels.
//!
//! The paper's common porting methodology "exploit\[s\] the large amount of
//! data-level parallelism available throughout the processing of a single
//! IPA query" (Section 4.3): each pthread owns a range of the data and
//! synchronizes only at the end. [`chunked_map`] reproduces exactly that.
//! [`interleaved_map`] reproduces the Phi tuning the paper describes for the
//! stemmer ("switching from allocating a range of data per thread to
//! interlaced array accesses"), and [`dynamic_map`] is a work-queue variant
//! used by the tile-based feature-extraction port.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Applies `f` to every index in `0..n`, splitting the range into one
/// contiguous chunk per thread (the paper's pthread strategy). Results are
/// combined with `u64::wrapping_add`, which is order-independent.
pub fn chunked_map<F>(n: usize, threads: usize, f: F) -> u64
where
    F: Fn(usize) -> u64 + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 || n == 0 {
        return (0..n).fold(0u64, |acc, i| acc.wrapping_add(f(i)));
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let f = &f;
                scope.spawn(move || {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(n);
                    (lo..hi).fold(0u64, |acc, i| acc.wrapping_add(f(i)))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .fold(0u64, u64::wrapping_add)
    })
}

/// Like [`chunked_map`] but with an interleaved (strided) index assignment:
/// thread `t` processes indices `t, t + threads, t + 2*threads, ...`.
pub fn interleaved_map<F>(n: usize, threads: usize, f: F) -> u64
where
    F: Fn(usize) -> u64 + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 || n == 0 {
        return (0..n).fold(0u64, |acc, i| acc.wrapping_add(f(i)));
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let f = &f;
                scope.spawn(move || {
                    (t..n)
                        .step_by(threads)
                        .fold(0u64, |acc, i| acc.wrapping_add(f(i)))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .fold(0u64, u64::wrapping_add)
    })
}

/// Work-queue scheduling: threads repeatedly claim the next unprocessed
/// index. Balances irregular per-item cost (e.g. image tiles with different
/// keypoint densities).
pub fn dynamic_map<F>(n: usize, threads: usize, f: F) -> u64
where
    F: Fn(usize) -> u64 + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 || n == 0 {
        return (0..n).fold(0u64, |acc, i| acc.wrapping_add(f(i)));
    }
    let next = AtomicUsize::new(0);
    let total = Mutex::new(0u64);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let f = &f;
            let next = &next;
            let total = &total;
            scope.spawn(move || {
                let mut local = 0u64;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local = local.wrapping_add(f(i));
                }
                let mut guard = total.lock();
                *guard = guard.wrapping_add(local);
            });
        }
    });
    total.into_inner()
}

/// Collects per-index results into a vector, in index order, using chunked
/// parallelism. For kernels whose output (not just a checksum) is needed.
pub fn chunked_collect<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 || n == 0 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let slots: Vec<&mut [Option<T>]> = out.chunks_mut(chunk).collect();
    std::thread::scope(|scope| {
        for (t, slot) in slots.into_iter().enumerate() {
            let f = &f;
            scope.spawn(move || {
                let lo = t * chunk;
                for (j, cell) in slot.iter_mut().enumerate() {
                    *cell = Some(f(lo + j));
                }
            });
        }
    });
    out.into_iter()
        .map(|x| x.expect("all slots filled"))
        .collect()
}

/// Crossbeam-channel pipeline: a producer feeds indices to `threads`
/// consumers. Demonstrates the producer/consumer layout some accelerator
/// hosts use; results are checksum-combined like the other strategies.
pub fn channel_map<F>(n: usize, threads: usize, f: F) -> u64
where
    F: Fn(usize) -> u64 + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 || n == 0 {
        return (0..n).fold(0u64, |acc, i| acc.wrapping_add(f(i)));
    }
    let (tx, rx) = crossbeam::channel::bounded::<usize>(threads * 4);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let rx = rx.clone();
                let f = &f;
                scope.spawn(move || {
                    let mut local = 0u64;
                    while let Ok(i) = rx.recv() {
                        local = local.wrapping_add(f(i));
                    }
                    local
                })
            })
            .collect();
        for i in 0..n {
            tx.send(i).expect("consumers alive");
        }
        drop(tx);
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .fold(0u64, u64::wrapping_add)
    })
}

/// Order-independent checksum of a float, for validating parallel ports
/// against the sequential baseline.
#[inline]
pub fn checksum_f32(x: f32) -> u64 {
    u64::from(x.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(i: usize) -> u64 {
        (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }

    #[test]
    fn all_strategies_agree_with_sequential() {
        let expect: u64 = (0..1000).map(work).fold(0u64, u64::wrapping_add);
        for threads in [1, 2, 3, 8] {
            assert_eq!(chunked_map(1000, threads, work), expect, "chunked {threads}");
            assert_eq!(
                interleaved_map(1000, threads, work),
                expect,
                "interleaved {threads}"
            );
            assert_eq!(dynamic_map(1000, threads, work), expect, "dynamic {threads}");
            assert_eq!(channel_map(1000, threads, work), expect, "channel {threads}");
        }
    }

    #[test]
    fn empty_range() {
        assert_eq!(chunked_map(0, 4, work), 0);
        assert_eq!(interleaved_map(0, 4, work), 0);
        assert_eq!(dynamic_map(0, 4, work), 0);
        assert_eq!(channel_map(0, 4, work), 0);
        assert!(chunked_collect(0, 4, |i| i).is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        assert_eq!(
            chunked_map(3, 64, work),
            (0..3).map(work).fold(0u64, u64::wrapping_add)
        );
    }

    #[test]
    fn collect_preserves_order() {
        let v = chunked_collect(100, 7, |i| i * 2);
        assert_eq!(v, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn checksum_is_order_independent() {
        let a = checksum_f32(1.5).wrapping_add(checksum_f32(-2.25));
        let b = checksum_f32(-2.25).wrapping_add(checksum_f32(1.5));
        assert_eq!(a, b);
    }
}
