//! Data-parallel execution strategies for the Sirius Suite kernels.
//!
//! The strategies moved to the bottom-layer [`sirius_par`] crate so the
//! live services (`sirius-speech`, `sirius-vision`, `sirius-nlp`) can use
//! them without a dependency cycle through this crate; this module
//! re-exports everything under the original `sirius_suite::parallel` path.

pub use sirius_par::*;

#[cfg(test)]
mod tests {
    use super::*;

    fn work(i: usize) -> u64 {
        (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }

    #[test]
    fn reexported_strategies_agree_with_sequential() {
        let expect: u64 = (0..500).map(work).fold(0u64, u64::wrapping_add);
        for threads in [1, 2, 3, 8] {
            assert_eq!(chunked_map(500, threads, work), expect, "chunked {threads}");
            assert_eq!(
                interleaved_map(500, threads, work),
                expect,
                "interleaved {threads}"
            );
            assert_eq!(dynamic_map(500, threads, work), expect, "dynamic {threads}");
            assert_eq!(channel_map(500, threads, work), expect, "channel {threads}");
        }
    }

    #[test]
    fn reexported_policy_is_available() {
        let policy = ExecPolicy::new(4, Strategy::Dynamic);
        assert_eq!(
            policy.map_collect(10, |i| i * i),
            (0..10).map(|i| i * i).collect::<Vec<_>>()
        );
    }
}
