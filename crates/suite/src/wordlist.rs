//! Word-list generation for the stemmer kernel.
//!
//! The paper's stemmer input is a 4M-word list. We generate morphologically
//! rich pseudo-English: random stems combined with real English suffixes so
//! every Porter step gets exercised, plus a sprinkling of genuine words.

use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

const ONSETS: &[&str] = &[
    "b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r", "s", "t", "v", "w", "st",
    "tr", "pl", "gr", "cl", "br", "sp",
];
const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "ea", "ou", "ai"];
const CODAS: &[&str] = &[
    "t", "n", "r", "l", "s", "d", "m", "p", "ct", "nt", "st", "rm", "nd",
];
const SUFFIXES: &[&str] = &[
    "", "s", "es", "ed", "ing", "er", "est", "ly", "ness", "ful", "ation", "ational", "tional",
    "izer", "ization", "iveness", "fulness", "ousness", "aliti", "iviti", "biliti", "icate",
    "ative", "alize", "ical", "ment", "ence", "ance", "able", "ible", "ant", "ent", "ism", "ate",
    "iti", "ous", "ive", "ize", "ion", "al", "y", "ies", "eed",
];
const REAL_WORDS: &[&str] = &[
    "caresses",
    "ponies",
    "relational",
    "conditional",
    "vietnamization",
    "predication",
    "operator",
    "feudalism",
    "decisiveness",
    "hopefulness",
    "formalize",
    "electricity",
    "adjustable",
    "defensible",
    "replacement",
    "adoption",
    "triplicate",
    "dependent",
];

/// Generates `n` pseudo-English words, deterministically per seed.
pub fn generate(seed: u64, n: usize) -> Vec<String> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            if i % 37 == 0 {
                (*REAL_WORDS.choose(&mut rng).expect("non-empty")).to_owned()
            } else {
                let mut w = String::new();
                let syllables = rng.gen_range(1..=3);
                for _ in 0..syllables {
                    w.push_str(ONSETS.choose(&mut rng).expect("non-empty"));
                    w.push_str(VOWELS.choose(&mut rng).expect("non-empty"));
                }
                if rng.gen_bool(0.6) {
                    w.push_str(CODAS.choose(&mut rng).expect("non-empty"));
                }
                w.push_str(SUFFIXES.choose(&mut rng).expect("non-empty"));
                w
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        let a = generate(1, 1000);
        assert_eq!(a.len(), 1000);
        assert_eq!(a, generate(1, 1000));
        assert_ne!(a, generate(2, 1000));
    }

    #[test]
    fn words_are_lowercase_ascii() {
        for w in generate(3, 500) {
            assert!(!w.is_empty());
            assert!(w.bytes().all(|b| b.is_ascii_lowercase()), "{w}");
        }
    }

    #[test]
    fn suffixes_are_present() {
        let words = generate(4, 5000);
        let with_ing = words.iter().filter(|w| w.ends_with("ing")).count();
        let with_ation = words.iter().filter(|w| w.ends_with("ation")).count();
        assert!(with_ing > 20, "ing: {with_ing}");
        assert!(with_ation > 20, "ation: {with_ation}");
    }
}
