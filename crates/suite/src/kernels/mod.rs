//! The seven Sirius Suite kernels (paper Table 4).

pub mod crf;
pub mod dnn;
pub mod fd;
pub mod fe;
pub mod gmm;
pub mod regex;
pub mod stemmer;
