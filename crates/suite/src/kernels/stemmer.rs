//! Sirius Suite Stemmer kernel: Porter stemming of a word list (baseline:
//! Porter's reference implementation; input: the paper's 4M-word list,
//! scaled).
//!
//! Granularity: "for each individual word". The port offers both the default
//! chunked assignment and the interleaved assignment the paper found faster
//! on the Phi (Section 4.4.2) — see [`StemmerKernel::run_interleaved`].

use sirius_nlp::stemmer;

use crate::parallel::{chunked_map, dynamic_map, interleaved_map};
use crate::wordlist;
use crate::{Kernel, Service};

/// The stemmer kernel input: a word list.
#[derive(Debug)]
pub struct StemmerKernel {
    words: Vec<String>,
}

impl StemmerKernel {
    /// Generates an input set; `scale` multiplies the word count
    /// (scale 1.0 ≈ 200k words; the paper's 4M list is scale 20).
    pub fn generate(scale: f64, seed: u64) -> Self {
        let n = ((200_000.0 * scale).ceil() as usize).max(1);
        Self {
            words: wordlist::generate(seed, n),
        }
    }

    /// Creates a kernel over caller-provided words.
    pub fn from_words(words: Vec<String>) -> Self {
        Self { words }
    }

    fn stem_checksum(&self, i: usize) -> u64 {
        let stemmed = stemmer::stem(&self.words[i]);
        // Order-independent checksum over bytes and length.
        stemmed.bytes().fold(stemmed.len() as u64, |acc, b| {
            acc.wrapping_add(u64::from(b).wrapping_mul(131))
        })
    }

    /// The interleaved-assignment variant (the paper's Phi tuning).
    pub fn run_interleaved(&self, threads: usize) -> u64 {
        interleaved_map(self.words.len(), threads, |i| self.stem_checksum(i))
    }

    /// The work-queue variant (threads claim words dynamically).
    pub fn run_workqueue(&self, threads: usize) -> u64 {
        dynamic_map(self.words.len(), threads, |i| self.stem_checksum(i))
    }
}

impl Kernel for StemmerKernel {
    fn name(&self) -> &'static str {
        "Stemmer"
    }

    fn service(&self) -> Service {
        Service::Qa
    }

    fn baseline_origin(&self) -> &'static str {
        "Porter"
    }

    fn granularity(&self) -> &'static str {
        "for each individual word"
    }

    fn items(&self) -> usize {
        self.words.len()
    }

    fn run_baseline(&self) -> u64 {
        (0..self.words.len()).fold(0u64, |acc, i| acc.wrapping_add(self.stem_checksum(i)))
    }

    fn run_parallel(&self, threads: usize) -> u64 {
        chunked_map(self.words.len(), threads, |i| self.stem_checksum(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_assignments_agree() {
        let k = StemmerKernel::generate(0.01, 3);
        let base = k.run_baseline();
        assert_eq!(base, k.run_parallel(4));
        assert_eq!(base, k.run_interleaved(4));
        assert_eq!(base, k.run_workqueue(4));
    }

    #[test]
    fn custom_words() {
        let k = StemmerKernel::from_words(vec!["running".into(), "caresses".into()]);
        assert_eq!(k.items(), 2);
        assert_eq!(k.run_baseline(), k.run_parallel(2));
    }
}
