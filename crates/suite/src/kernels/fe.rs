//! Sirius Suite FE kernel: SURF feature extraction (baseline: SURF detector
//! over the whole image).
//!
//! Granularity: "for each image tile" — the multicore port pre-tiles the
//! image and assigns tiles to threads, exactly the paper's strategy:
//! "Each thread of the CPU is assigned one or more tiles of the input image
//! ... as the tile size decreases, the number of 'good' keypoints decreases,
//! so we fix the tile size to a minimum of 50×50 per thread"
//! (Section 4.3.1). Tiling changes the detected keypoint set at tile
//! borders, so this kernel is validated approximately, not bit-exactly.

use sirius_vision::image::GrayImage;
use sirius_vision::surf::{self, SurfConfig};
use sirius_vision::synth;

use crate::parallel::dynamic_map;
use crate::{Kernel, Service};

/// Minimum tile side enforced by the port (the paper's 50×50 floor).
pub const MIN_TILE: usize = 50;

/// The feature-extraction kernel input: one image and a tile grid.
#[derive(Debug)]
pub struct FeKernel {
    image: GrayImage,
    tile: usize,
    config: SurfConfig,
}

impl FeKernel {
    /// Generates an input image; `scale` controls image area
    /// (scale 1.0 ≈ 512×384).
    pub fn generate(scale: f64, seed: u64) -> Self {
        let f = scale.sqrt().max(0.2);
        let w = ((512.0 * f) as usize).max(96);
        let h = ((384.0 * f) as usize).max(96);
        Self {
            image: synth::generate_scene(seed, w, h),
            tile: 128,
            config: SurfConfig::default(),
        }
    }

    /// Creates a kernel over a caller-provided image with a given tile size
    /// (clamped to the paper's 50×50 minimum). Used by the tile-size
    /// ablation bench.
    pub fn with_tile_size(image: GrayImage, tile: usize) -> Self {
        Self {
            image,
            tile: tile.max(MIN_TILE),
            config: SurfConfig::default(),
        }
    }

    /// Number of keypoints found by the sequential whole-image detector.
    pub fn baseline_keypoints(&self) -> usize {
        surf::detect(&self.image, &self.config).len()
    }

    /// Number of keypoints found by the tiled port.
    pub fn tiled_keypoints(&self, threads: usize) -> usize {
        self.run_parallel(threads) as usize
    }
}

fn keypoint_count_checksum(kps: usize) -> u64 {
    kps as u64
}

impl Kernel for FeKernel {
    fn name(&self) -> &'static str {
        "FE"
    }

    fn service(&self) -> Service {
        Service::Imm
    }

    fn baseline_origin(&self) -> &'static str {
        "SURF"
    }

    fn granularity(&self) -> &'static str {
        "for each image tile"
    }

    fn items(&self) -> usize {
        self.image.tiles(self.tile, self.tile).len()
    }

    fn run_baseline(&self) -> u64 {
        keypoint_count_checksum(surf::detect(&self.image, &self.config).len())
    }

    fn run_parallel(&self, threads: usize) -> u64 {
        let tiles = self.image.tiles(self.tile, self.tile);
        // Tiles have irregular keypoint density; use work-queue scheduling.
        dynamic_map(tiles.len(), threads, |i| {
            let (_, _, tile) = &tiles[i];
            keypoint_count_checksum(surf::detect(tile, &self.config).len())
        })
    }

    fn exact(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiled_detection_finds_comparable_keypoints() {
        let k = FeKernel::generate(0.4, 21);
        let base = k.baseline_keypoints();
        let tiled = k.tiled_keypoints(4);
        assert!(base > 0, "baseline found nothing");
        // The paper accepts keypoint loss from tiling; sanity-check the
        // ports stay within a factor of two of each other.
        assert!(
            tiled * 2 >= base && base * 3 >= tiled,
            "base={base} tiled={tiled}"
        );
    }

    #[test]
    fn tile_size_is_floored_at_50() {
        let img = synth::generate_scene(1, 128, 128);
        let k = FeKernel::with_tile_size(img, 10);
        assert_eq!(k.tile, MIN_TILE);
    }

    #[test]
    fn thread_count_does_not_change_result() {
        let k = FeKernel::generate(0.2, 22);
        assert_eq!(k.run_parallel(1), k.run_parallel(4));
    }
}
