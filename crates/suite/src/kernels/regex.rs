//! Sirius Suite Regex kernel: matching a battery of expressions against a
//! sentence set (baseline: SLRE; input: 100 expressions / 400 sentences).
//!
//! Granularity: "for each regex-sentence pair" — the parallel port flattens
//! the (expression × sentence) grid and splits the pairs across threads.

use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use sirius_nlp::regex::Regex;

use crate::parallel::chunked_map;
use crate::{Kernel, Service};

/// The regex kernel input: compiled patterns and a sentence set.
#[derive(Debug)]
pub struct RegexKernel {
    patterns: Vec<Regex>,
    sentences: Vec<String>,
}

/// Number of expressions (paper: 100).
pub const NUM_PATTERNS: usize = 100;

const WORDS: &[&str] = &[
    "the",
    "president",
    "capital",
    "restaurant",
    "closes",
    "at",
    "10",
    "pm",
    "who",
    "what",
    "elected",
    "44th",
    "city",
    "famous",
    "alarm",
    "set",
    "for",
    "8am",
    "where",
    "italy",
    "harry",
    "potter",
    "author",
    "of",
    "is",
    "in",
    "opened",
    "1990",
    "2015",
    "this",
];

fn pattern_battery(rng: &mut impl Rng) -> Vec<Regex> {
    // A core of question-analysis patterns plus generated variants, matching
    // the paper's mix of query-word and token-shape filters.
    let mut sources: Vec<String> = vec![
        r"^(what|who|where|when|which|why|how)$".into(),
        r"[0-9]+(th|st|nd|rd)".into(),
        r"^[A-Z][a-z]+".into(),
        r"[^a-zA-Z0-9 ]".into(),
        r"(is|was|are|were|does|do|did)".into(),
        r"[0-9]+ ?(am|pm)".into(),
        r"(open|close)(s|d)?".into(),
        r"\d{4}".into(),
    ];
    let fragments = ["[a-z]+", "\\d+", "(a|e|i|o|u)", "[A-Z]", "\\w+", "\\s"];
    let suffixes = ["", "s", "ed", "ing", "er"];
    while sources.len() < NUM_PATTERNS {
        let style = rng.gen_range(0..3);
        let p = match style {
            0 => {
                // word(alternation) with suffix class
                let a = WORDS.choose(rng).expect("non-empty");
                let b = WORDS.choose(rng).expect("non-empty");
                let s = suffixes.choose(rng).expect("non-empty");
                format!("({a}|{b}){s}")
            }
            1 => {
                let f = fragments.choose(rng).expect("non-empty");
                let g = fragments.choose(rng).expect("non-empty");
                format!("{f} {g}")
            }
            _ => {
                let w = WORDS.choose(rng).expect("non-empty");
                let n = rng.gen_range(1..4);
                format!("{w}.{{0,{n}}}[a-z]*")
            }
        };
        sources.push(p);
    }
    sources
        .iter()
        .map(|p| Regex::new(p).expect("generated patterns compile"))
        .collect()
}

fn sentence_set(rng: &mut impl Rng, n: usize) -> Vec<String> {
    (0..n)
        .map(|_| {
            let len = rng.gen_range(6..18);
            let words: Vec<&str> = (0..len)
                .map(|_| *WORDS.choose(rng).expect("non-empty"))
                .collect();
            let mut s = words.join(" ");
            if rng.gen_bool(0.3) {
                s.push('?');
            } else {
                s.push('.');
            }
            s
        })
        .collect()
}

impl RegexKernel {
    /// Generates an input set; `scale` multiplies the sentence count
    /// (scale 1.0 ≈ the paper's 400 sentences).
    pub fn generate(scale: f64, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let patterns = pattern_battery(&mut rng);
        let n = ((400.0 * scale).ceil() as usize).max(1);
        let sentences = sentence_set(&mut rng, n);
        Self {
            patterns,
            sentences,
        }
    }

    fn pair_checksum(&self, pair: usize) -> u64 {
        let p = &self.patterns[pair / self.sentences.len()];
        let s = &self.sentences[pair % self.sentences.len()];
        p.count_matches(s) as u64
    }
}

impl Kernel for RegexKernel {
    fn name(&self) -> &'static str {
        "Regex"
    }

    fn service(&self) -> Service {
        Service::Qa
    }

    fn baseline_origin(&self) -> &'static str {
        "SLRE"
    }

    fn granularity(&self) -> &'static str {
        "for each regex-sentence pair"
    }

    fn items(&self) -> usize {
        self.patterns.len() * self.sentences.len()
    }

    fn run_baseline(&self) -> u64 {
        (0..self.items()).fold(0u64, |acc, i| acc.wrapping_add(self.pair_checksum(i)))
    }

    fn run_parallel(&self, threads: usize) -> u64 {
        chunked_map(self.items(), threads, |i| self.pair_checksum(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_equals_parallel() {
        let k = RegexKernel::generate(0.1, 7);
        assert_eq!(k.run_baseline(), k.run_parallel(4));
    }

    #[test]
    fn battery_has_100_patterns() {
        let k = RegexKernel::generate(0.05, 8);
        assert_eq!(k.patterns.len(), NUM_PATTERNS);
    }

    #[test]
    fn some_pairs_actually_match() {
        let k = RegexKernel::generate(0.1, 9);
        assert!(k.run_baseline() > 0, "no matches in the whole grid");
    }
}
