//! Sirius Suite CRF kernel: part-of-speech decoding of a sentence batch
//! (baseline: CRFsuite on the CoNLL-2000 shared task; we use the synthetic
//! tagged corpus, see DESIGN.md).
//!
//! Granularity: "for each sentence" — Viterbi decoding of each sentence is
//! independent; the parallel port splits sentences across threads.

use sirius_nlp::crf::{Crf, TrainConfig};
use sirius_nlp::pos;

use crate::parallel::chunked_map;
use crate::{Kernel, Service};

/// The CRF decoding kernel input: a trained model and sentence batch.
#[derive(Debug)]
pub struct CrfKernel {
    model: Crf,
    sentences: Vec<Vec<String>>,
}

impl CrfKernel {
    /// Generates an input set; `scale` multiplies the sentence count
    /// (scale 1.0 ≈ 600 sentences).
    pub fn generate(scale: f64, seed: u64) -> Self {
        let train = pos::generate(seed, 250);
        let model = Crf::train(
            pos::tag_set(),
            &train,
            TrainConfig {
                epochs: 6,
                ..TrainConfig::default()
            },
        );
        let n = ((600.0 * scale).ceil() as usize).max(1);
        let sentences = pos::generate(seed ^ 0xc0ffee, n)
            .into_iter()
            .map(|s| s.tokens)
            .collect();
        Self { model, sentences }
    }

    fn decode_checksum(&self, i: usize) -> u64 {
        self.model
            .decode(&self.sentences[i])
            .iter()
            .enumerate()
            .map(|(pos, &tag)| (tag as u64 + 1).wrapping_mul(pos as u64 + 1))
            .fold(0u64, u64::wrapping_add)
    }

    /// Posterior-decoding variant (forward-backward instead of Viterbi),
    /// used by the decoding-strategy ablation bench.
    pub fn run_posterior_baseline(&self) -> u64 {
        (0..self.sentences.len())
            .map(|i| {
                self.model
                    .decode_posterior(&self.sentences[i])
                    .iter()
                    .enumerate()
                    .map(|(pos, &tag)| (tag as u64 + 1).wrapping_mul(pos as u64 + 1))
                    .fold(0u64, u64::wrapping_add)
            })
            .fold(0u64, u64::wrapping_add)
    }
}

impl Kernel for CrfKernel {
    fn name(&self) -> &'static str {
        "CRF"
    }

    fn service(&self) -> Service {
        Service::Qa
    }

    fn baseline_origin(&self) -> &'static str {
        "CRFsuite"
    }

    fn granularity(&self) -> &'static str {
        "for each sentence"
    }

    fn items(&self) -> usize {
        self.sentences.len()
    }

    fn run_baseline(&self) -> u64 {
        (0..self.sentences.len()).fold(0u64, |acc, i| acc.wrapping_add(self.decode_checksum(i)))
    }

    fn run_parallel(&self, threads: usize) -> u64 {
        chunked_map(self.sentences.len(), threads, |i| self.decode_checksum(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_equals_parallel() {
        let k = CrfKernel::generate(0.05, 11);
        assert_eq!(k.run_baseline(), k.run_parallel(4));
    }

    #[test]
    fn posterior_variant_runs() {
        let k = CrfKernel::generate(0.02, 12);
        // Posterior and Viterbi may disagree on ambiguous tokens but both
        // must produce plausible (non-zero) checksums.
        assert!(k.run_posterior_baseline() > 0);
        assert!(k.run_baseline() > 0);
    }
}
