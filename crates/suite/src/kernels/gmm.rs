//! Sirius Suite GMM kernel: acoustic scoring of feature vectors against a
//! bank of Gaussian mixtures (baseline: CMU Sphinx acoustic scoring).
//!
//! Granularity: "for each HMM state" — every (frame, state) pair is an
//! independent log-likelihood evaluation; the parallel port splits frames
//! across threads, each scoring all states (paper Table 4, Section 4.4.1).

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use sirius_speech::gmm::Gmm;

use crate::parallel::{checksum_f32, chunked_map};
use crate::{Kernel, Service};

/// The GMM scoring kernel input: a senone bank and a batch of frames.
#[derive(Debug)]
pub struct GmmKernel {
    states: Vec<Gmm>,
    frames: Vec<Vec<f32>>,
    /// Raw parameters in component-major (AoS) layout, for the layout
    /// ablation: `aos[state][component * DIM + d]` pairs of (mean, prec).
    aos_params: Vec<Vec<(f32, f32)>>,
    /// The same parameters in dimension-major (SoA) layout:
    /// `soa[state][d * COMPONENTS + component]`.
    soa_params: Vec<Vec<(f32, f32)>>,
    /// Per-(state, component) `log weight + log normalizer` offsets.
    offsets: Vec<Vec<f32>>,
}

/// Feature dimensionality (Sphinx-like).
pub const DIM: usize = 32;
/// Mixture components per state.
pub const COMPONENTS: usize = 8;
/// Number of tied states in the bank.
pub const NUM_STATES: usize = 128;

impl GmmKernel {
    /// Generates an input set; `scale` multiplies the frame count
    /// (scale 1.0 ≈ 256 frames).
    pub fn generate(scale: f64, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut states = Vec::with_capacity(NUM_STATES);
        let mut aos_params = Vec::with_capacity(NUM_STATES);
        let mut soa_params = Vec::with_capacity(NUM_STATES);
        let mut offsets = Vec::with_capacity(NUM_STATES);
        for _ in 0..NUM_STATES {
            let means: Vec<f32> = (0..COMPONENTS * DIM)
                .map(|_| rng.gen_range(-3.0f32..3.0))
                .collect();
            let vars: Vec<f32> = (0..COMPONENTS * DIM)
                .map(|_| rng.gen_range(0.2f32..2.0))
                .collect();
            let weights: Vec<f32> = (0..COMPONENTS)
                .map(|_| rng.gen_range(0.1f32..1.0))
                .collect();
            // AoS (component-major) raw parameters.
            let aos: Vec<(f32, f32)> = means
                .iter()
                .zip(&vars)
                .map(|(&m, &v)| (m, 1.0 / (2.0 * v)))
                .collect();
            // SoA (dimension-major) transposition.
            let mut soa = vec![(0.0f32, 0.0f32); COMPONENTS * DIM];
            for k in 0..COMPONENTS {
                for d in 0..DIM {
                    soa[d * COMPONENTS + k] = aos[k * DIM + d];
                }
            }
            let wsum: f32 = weights.iter().sum();
            let offs: Vec<f32> = (0..COMPONENTS)
                .map(|k| {
                    let log_det: f32 = vars[k * DIM..(k + 1) * DIM].iter().map(|v| v.ln()).sum();
                    (weights[k] / wsum).ln()
                        - 0.5 * (DIM as f32 * (2.0 * std::f32::consts::PI).ln() + log_det)
                })
                .collect();
            states.push(Gmm::from_params(DIM, means, vars, weights));
            aos_params.push(aos);
            soa_params.push(soa);
            offsets.push(offs);
        }
        let n = ((256.0 * scale).ceil() as usize).max(1);
        let frames = (0..n)
            .map(|_| (0..DIM).map(|_| rng.gen_range(-3.0f32..3.0)).collect())
            .collect();
        Self {
            states,
            frames,
            aos_params,
            soa_params,
            offsets,
        }
    }

    fn score_frame(&self, i: usize) -> u64 {
        let frame = &self.frames[i];
        self.states
            .iter()
            .map(|g| checksum_f32(g.log_likelihood(frame)))
            .fold(0u64, u64::wrapping_add)
    }

    /// Scores one frame with the component-major (AoS) layout: the natural
    /// CPU layout, which produces strided accesses when a SIMD lane per
    /// component walks the dimensions.
    pub fn score_frame_aos(&self, i: usize) -> f32 {
        let frame = &self.frames[i];
        let mut total = 0.0f32;
        for (params, offs) in self.aos_params.iter().zip(&self.offsets) {
            let mut best = f32::NEG_INFINITY;
            for k in 0..COMPONENTS {
                let mut dist = 0.0f32;
                for d in 0..DIM {
                    let (mean, prec) = params[k * DIM + d];
                    let diff = frame[d] - mean;
                    dist += diff * diff * prec;
                }
                best = best.max(offs[k] - dist);
            }
            total += best;
        }
        total
    }

    /// Scores one frame with the dimension-major (SoA) layout, the
    /// coalescing-friendly transposition the paper applies for its GPU port
    /// ("optimizing the data structure layout to ensure coalesced global
    /// memory accesses", Section 4.4.1): all components advance through the
    /// dimensions together.
    pub fn score_frame_soa(&self, i: usize) -> f32 {
        let frame = &self.frames[i];
        let mut total = 0.0f32;
        let mut dists = [0.0f32; COMPONENTS];
        for (params, offs) in self.soa_params.iter().zip(&self.offsets) {
            dists.fill(0.0);
            for d in 0..DIM {
                let x = frame[d];
                let row = &params[d * COMPONENTS..(d + 1) * COMPONENTS];
                for (k, &(mean, prec)) in row.iter().enumerate() {
                    let diff = x - mean;
                    dists[k] += diff * diff * prec;
                }
            }
            let mut best = f32::NEG_INFINITY;
            for k in 0..COMPONENTS {
                best = best.max(offs[k] - dists[k]);
            }
            total += best;
        }
        total
    }

    /// Runs the whole batch under one layout; used by the layout ablation.
    pub fn run_layout(&self, soa: bool) -> f64 {
        (0..self.frames.len())
            .map(|i| {
                f64::from(if soa {
                    self.score_frame_soa(i)
                } else {
                    self.score_frame_aos(i)
                })
            })
            .sum()
    }
}

impl Kernel for GmmKernel {
    fn name(&self) -> &'static str {
        "GMM"
    }

    fn service(&self) -> Service {
        Service::Asr
    }

    fn baseline_origin(&self) -> &'static str {
        "CMU Sphinx"
    }

    fn granularity(&self) -> &'static str {
        "for each HMM state"
    }

    fn items(&self) -> usize {
        self.frames.len()
    }

    fn run_baseline(&self) -> u64 {
        (0..self.frames.len()).fold(0u64, |acc, i| acc.wrapping_add(self.score_frame(i)))
    }

    fn run_parallel(&self, threads: usize) -> u64 {
        chunked_map(self.frames.len(), threads, |i| self.score_frame(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_equals_parallel() {
        let k = GmmKernel::generate(0.05, 9);
        assert_eq!(k.run_baseline(), k.run_parallel(4));
    }

    #[test]
    fn scale_controls_items() {
        assert!(GmmKernel::generate(0.1, 1).items() < GmmKernel::generate(1.0, 1).items());
    }

    #[test]
    fn aos_and_soa_layouts_agree() {
        let k = GmmKernel::generate(0.05, 10);
        for i in 0..k.items() {
            let aos = k.score_frame_aos(i);
            let soa = k.score_frame_soa(i);
            assert!(
                (aos - soa).abs() <= 1e-2 * aos.abs().max(1.0),
                "frame {i}: aos {aos} vs soa {soa}"
            );
        }
        let a = k.run_layout(false);
        let b = k.run_layout(true);
        assert!((a - b).abs() <= 1e-3 * a.abs().max(1.0));
    }
}
