//! Sirius Suite FD kernel: SURF feature description for a vector of
//! keypoints (baseline: SURF descriptor).
//!
//! Granularity: "for each keypoint" — orientation assignment and descriptor
//! accumulation are independent per keypoint, so the port splits the
//! keypoint vector across threads.

use sirius_vision::integral::IntegralImage;
use sirius_vision::surf::{self, KeyPoint, SurfConfig};
use sirius_vision::synth;

use crate::parallel::{checksum_f32, chunked_map};
use crate::{Kernel, Service};

/// The feature-description kernel input: an integral image and keypoints.
pub struct FdKernel {
    integral: IntegralImage,
    keypoints: Vec<KeyPoint>,
    config: SurfConfig,
}

impl std::fmt::Debug for FdKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FdKernel")
            .field("keypoints", &self.keypoints.len())
            .finish_non_exhaustive()
    }
}

impl FdKernel {
    /// Generates an input set; `scale` multiplies the keypoint count by
    /// replicating detections with jittered positions (scale 1.0 ≈ several
    /// hundred keypoints).
    pub fn generate(scale: f64, seed: u64) -> Self {
        let image = synth::generate_scene(seed, 384, 288);
        let config = SurfConfig::default();
        let integral = IntegralImage::new(&image);
        let detected = surf::detect_on_integral(&integral, &config);
        let target = ((detected.len().max(1) as f64) * (4.0 * scale).max(0.05)).ceil() as usize;
        let mut keypoints = Vec::with_capacity(target.max(1));
        let mut i = 0usize;
        while keypoints.len() < target.max(1) {
            let mut kp = detected[i % detected.len().max(1)];
            // Jitter replicas so the work is not byte-identical.
            let rep = (i / detected.len().max(1)) as f32;
            kp.x = (kp.x + rep).min(image.width() as f32 - 1.0);
            keypoints.push(kp);
            i += 1;
        }
        Self {
            integral,
            keypoints,
            config,
        }
    }

    fn describe_checksum(&self, i: usize) -> u64 {
        let mut kp = self.keypoints[i];
        kp.orientation = if self.config.upright {
            0.0
        } else {
            surf::assign_orientation(&self.integral, &kp)
        };
        surf::describe_keypoint(&self.integral, &kp)
            .0
            .iter()
            .map(|&v| checksum_f32(v))
            .fold(0u64, u64::wrapping_add)
    }
}

impl Kernel for FdKernel {
    fn name(&self) -> &'static str {
        "FD"
    }

    fn service(&self) -> Service {
        Service::Imm
    }

    fn baseline_origin(&self) -> &'static str {
        "SURF"
    }

    fn granularity(&self) -> &'static str {
        "for each keypoint"
    }

    fn items(&self) -> usize {
        self.keypoints.len()
    }

    fn run_baseline(&self) -> u64 {
        (0..self.keypoints.len()).fold(0u64, |acc, i| acc.wrapping_add(self.describe_checksum(i)))
    }

    fn run_parallel(&self, threads: usize) -> u64 {
        chunked_map(self.keypoints.len(), threads, |i| self.describe_checksum(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_equals_parallel() {
        let k = FdKernel::generate(0.05, 31);
        assert_eq!(k.run_baseline(), k.run_parallel(4));
    }

    #[test]
    fn keypoint_count_scales() {
        let small = FdKernel::generate(0.05, 32);
        let large = FdKernel::generate(0.5, 32);
        assert!(large.items() > small.items());
    }
}
