//! Sirius Suite DNN kernel: batched feed-forward scoring (baseline: RWTH
//! RASR's DNN scoring).
//!
//! Granularity: "for each matrix multiplication" — each frame's forward pass
//! is a chain of matrix-vector products; the parallel port splits the frame
//! batch across threads (paper Table 4, Section 4.4.1).

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use sirius_speech::dnn::{Dnn, DnnScratch};

use crate::parallel::{checksum_f32, chunked_map};
use crate::{Kernel, Service};

/// Input dimensionality (stacked MFCC context window).
pub const INPUT_DIM: usize = 120;
/// Hidden layer width.
pub const HIDDEN: usize = 256;
/// Output classes (tied HMM states).
pub const OUTPUTS: usize = 128;

/// The DNN forward-pass kernel input.
#[derive(Debug)]
pub struct DnnKernel {
    net: Dnn,
    frames: Vec<Vec<f32>>,
}

impl DnnKernel {
    /// Generates an input set; `scale` multiplies the frame count
    /// (scale 1.0 ≈ 512 frames).
    pub fn generate(scale: f64, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let net = Dnn::new(&[INPUT_DIM, HIDDEN, HIDDEN, OUTPUTS], &mut rng);
        let n = ((512.0 * scale).ceil() as usize).max(1);
        let frames = (0..n)
            .map(|_| {
                (0..INPUT_DIM)
                    .map(|_| rng.gen_range(-1.0f32..1.0))
                    .collect()
            })
            .collect();
        Self { net, frames }
    }

    fn forward_checksum(&self, i: usize) -> u64 {
        self.net
            .forward(&self.frames[i])
            .iter()
            .map(|&p| checksum_f32(p))
            .fold(0u64, u64::wrapping_add)
    }

    /// GEMM-batched variant of [`Kernel::run_baseline`]: stacks all frames
    /// into one matrix and runs one multiply per layer. Checksum-equal to
    /// the per-frame baseline because the batched forward is bit-identical
    /// per row (see [`Dnn::forward_batch_into`]).
    pub fn run_batched(&self) -> u64 {
        let rows = self.frames.len();
        let mut x = Vec::with_capacity(rows * INPUT_DIM);
        for f in &self.frames {
            x.extend_from_slice(f);
        }
        let plan = self.net.plan();
        let mut out = Vec::new();
        self.net
            .forward_batch_into(&x, rows, &plan, &mut DnnScratch::default(), &mut out);
        out.iter()
            .map(|&p| checksum_f32(p))
            .fold(0u64, u64::wrapping_add)
    }
}

impl Kernel for DnnKernel {
    fn name(&self) -> &'static str {
        "DNN"
    }

    fn service(&self) -> Service {
        Service::Asr
    }

    fn baseline_origin(&self) -> &'static str {
        "RWTH RASR"
    }

    fn granularity(&self) -> &'static str {
        "for each matrix multiplication"
    }

    fn items(&self) -> usize {
        self.frames.len()
    }

    fn run_baseline(&self) -> u64 {
        (0..self.frames.len()).fold(0u64, |acc, i| acc.wrapping_add(self.forward_checksum(i)))
    }

    fn run_parallel(&self, threads: usize) -> u64 {
        chunked_map(self.frames.len(), threads, |i| self.forward_checksum(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_equals_parallel() {
        let k = DnnKernel::generate(0.02, 5);
        assert_eq!(k.run_baseline(), k.run_parallel(3));
    }

    #[test]
    fn batched_gemm_matches_baseline_checksum() {
        let k = DnnKernel::generate(0.02, 7);
        assert_eq!(k.run_baseline(), k.run_batched());
    }

    #[test]
    fn network_shape_is_as_documented() {
        let k = DnnKernel::generate(0.01, 6);
        assert_eq!(k.net.input_dim(), INPUT_DIM);
        assert_eq!(k.net.output_dim(), OUTPUTS);
        assert_eq!(k.net.num_hidden_layers(), 2);
    }
}
