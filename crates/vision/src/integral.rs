//! Integral images (summed-area tables).
//!
//! SURF's speed comes from evaluating box filters in constant time over an
//! integral image (Bay et al., 2006). Both the Hessian detector and the Haar
//! wavelet responses in this crate are built on [`IntegralImage::box_sum`].

use crate::image::GrayImage;

/// A summed-area table with one extra row/column of zeros, so
/// `sum(x, y) = Σ pixels in [0, x) × [0, y)`.
#[derive(Debug, Clone, PartialEq)]
pub struct IntegralImage {
    width: usize,
    height: usize,
    /// `(width + 1) * (height + 1)` prefix sums in f64 for accuracy.
    table: Vec<f64>,
}

impl IntegralImage {
    /// Builds the integral image of `img`.
    pub fn new(img: &GrayImage) -> Self {
        let w = img.width();
        let h = img.height();
        let stride = w + 1;
        let mut table = vec![0.0f64; stride * (h + 1)];
        for y in 0..h {
            let mut row_sum = 0.0f64;
            for x in 0..w {
                row_sum += f64::from(img.get(x, y));
                table[(y + 1) * stride + (x + 1)] = table[y * stride + (x + 1)] + row_sum;
            }
        }
        Self {
            width: w,
            height: h,
            table,
        }
    }

    /// Source image width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Source image height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Sum of pixels in `[0, x) × [0, y)` (both clamped to the image).
    #[inline]
    pub fn prefix(&self, x: usize, y: usize) -> f64 {
        let cx = x.min(self.width);
        let cy = y.min(self.height);
        self.table[cy * (self.width + 1) + cx]
    }

    /// Sum over the rectangle `[x0, x1) × [y0, y1)`, clamping negative or
    /// out-of-range bounds to the image; empty or inverted rectangles sum
    /// to zero.
    #[inline]
    pub fn box_sum(&self, x0: isize, y0: isize, x1: isize, y1: isize) -> f64 {
        let cx0 = x0.clamp(0, self.width as isize) as usize;
        let cy0 = y0.clamp(0, self.height as isize) as usize;
        let cx1 = x1.clamp(0, self.width as isize) as usize;
        let cy1 = y1.clamp(0, self.height as isize) as usize;
        if cx1 <= cx0 || cy1 <= cy0 {
            return 0.0;
        }
        self.prefix(cx1, cy1) + self.prefix(cx0, cy0)
            - self.prefix(cx1, cy0)
            - self.prefix(cx0, cy1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_sum(img: &GrayImage, x0: usize, y0: usize, x1: usize, y1: usize) -> f64 {
        let mut s = 0.0;
        for y in y0..y1.min(img.height()) {
            for x in x0..x1.min(img.width()) {
                s += f64::from(img.get(x, y));
            }
        }
        s
    }

    fn test_image() -> GrayImage {
        let data: Vec<f32> = (0..48).map(|i| ((i * 13 + 5) % 17) as f32 / 17.0).collect();
        GrayImage::from_data(8, 6, data)
    }

    #[test]
    fn box_sum_matches_naive() {
        let img = test_image();
        let ii = IntegralImage::new(&img);
        for (x0, y0, x1, y1) in [(0, 0, 8, 6), (1, 1, 4, 5), (3, 2, 8, 3), (0, 5, 8, 6)] {
            let expect = naive_sum(&img, x0, y0, x1, y1);
            let got = ii.box_sum(x0 as isize, y0 as isize, x1 as isize, y1 as isize);
            assert!((got - expect).abs() < 1e-9, "({x0},{y0},{x1},{y1})");
        }
    }

    #[test]
    fn out_of_range_is_clamped() {
        let img = test_image();
        let ii = IntegralImage::new(&img);
        let full = naive_sum(&img, 0, 0, 8, 6);
        assert!((ii.box_sum(-10, -10, 100, 100) - full).abs() < 1e-9);
    }

    #[test]
    fn empty_and_inverted_boxes_are_zero() {
        let ii = IntegralImage::new(&test_image());
        assert_eq!(ii.box_sum(3, 3, 3, 5), 0.0);
        assert_eq!(ii.box_sum(5, 5, 2, 2), 0.0);
    }

    #[test]
    fn single_pixel_box() {
        let img = test_image();
        let ii = IntegralImage::new(&img);
        assert!((ii.box_sum(2, 3, 3, 4) - f64::from(img.get(2, 3))).abs() < 1e-9);
    }
}
