//! Approximate nearest-neighbour search over SURF descriptors.
//!
//! The paper matches query descriptors "to pre-clustered descriptors
//! representing the database images by using an approximate nearest neighbor
//! (ANN) search" (Section 2.3.2). This module implements a k-d tree with a
//! bounded-leaf best-bin-first search: `max_checks` limits how many leaf
//! points are examined, trading exactness for speed (the `exact` mode visits
//! everything and is used as the oracle in property tests and the ANN
//! ablation bench).

use crate::surf::Descriptor;

/// A payload-carrying point in the index.
#[derive(Debug, Clone)]
struct Entry {
    vector: Vec<f32>,
    /// Caller-supplied payload (e.g. image id).
    payload: u32,
}

#[derive(Debug)]
enum Node {
    Leaf {
        /// Indices into `entries`.
        points: Vec<u32>,
    },
    Split {
        dim: usize,
        value: f32,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// Result of a nearest-neighbour query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Squared Euclidean distance.
    pub distance_sq: f32,
    /// Payload of the matched point.
    pub payload: u32,
}

/// A k-d tree over fixed-dimension float vectors.
#[derive(Debug)]
pub struct KdTree {
    entries: Vec<Entry>,
    root: Node,
    dim: usize,
}

/// Search budget: how many leaf points may be examined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchBudget {
    /// Visit every candidate reachable by exact backtracking (exact NN).
    Exact,
    /// Examine at most this many leaf points (approximate NN).
    MaxChecks(usize),
}

const LEAF_SIZE: usize = 12;

/// Squared Euclidean distance between two equal-length vectors — the single
/// inner-loop kernel shared by the tree search and the linear-scan oracle.
#[inline]
fn dist_sq(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl KdTree {
    /// Builds a tree from `(vector, payload)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or vectors have inconsistent dimensions.
    pub fn build(points: Vec<(Vec<f32>, u32)>) -> Self {
        assert!(!points.is_empty(), "cannot build a k-d tree from no points");
        let dim = points[0].0.len();
        assert!(
            points.iter().all(|(v, _)| v.len() == dim),
            "inconsistent dimensions"
        );
        let entries: Vec<Entry> = points
            .into_iter()
            .map(|(vector, payload)| Entry { vector, payload })
            .collect();
        let mut idxs: Vec<u32> = (0..entries.len() as u32).collect();
        let root = Self::build_node(&entries, &mut idxs, dim);
        Self { entries, root, dim }
    }

    /// Builds a tree over descriptors with their index as payload.
    pub fn from_descriptors<'a, I>(descriptors: I) -> Option<Self>
    where
        I: IntoIterator<Item = (&'a Descriptor, u32)>,
    {
        let pts: Vec<(Vec<f32>, u32)> = descriptors
            .into_iter()
            .map(|(d, p)| (d.0.clone(), p))
            .collect();
        if pts.is_empty() {
            None
        } else {
            Some(Self::build(pts))
        }
    }

    fn build_node(entries: &[Entry], idxs: &mut [u32], dim: usize) -> Node {
        if idxs.len() <= LEAF_SIZE {
            return Node::Leaf {
                points: idxs.to_vec(),
            };
        }
        // Split on the dimension with the largest spread.
        let mut best_dim = 0;
        let mut best_spread = -1.0f32;
        for d in 0..dim {
            let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
            for &i in idxs.iter() {
                let v = entries[i as usize].vector[d];
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if hi - lo > best_spread {
                best_spread = hi - lo;
                best_dim = d;
            }
        }
        if best_spread <= 0.0 {
            // All points identical along every axis.
            return Node::Leaf {
                points: idxs.to_vec(),
            };
        }
        let mid = idxs.len() / 2;
        idxs.select_nth_unstable_by(mid, |&a, &b| {
            entries[a as usize].vector[best_dim].total_cmp(&entries[b as usize].vector[best_dim])
        });
        let value = entries[idxs[mid] as usize].vector[best_dim];
        let (left_idx, right_idx) = idxs.split_at_mut(mid);
        let left = Self::build_node(entries, left_idx, dim);
        let right = Self::build_node(entries, right_idx, dim);
        Node::Split {
            dim: best_dim,
            value,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty (never true for a built tree).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the indexed `(vector, payload)` points, in insertion
    /// order (used for persistence; the tree is rebuilt on load).
    pub fn iter_points(&self) -> impl Iterator<Item = (&[f32], u32)> {
        self.entries
            .iter()
            .map(|e| (e.vector.as_slice(), e.payload))
    }

    /// Finds the two nearest neighbours of `query` (for the ratio test).
    ///
    /// Returns `(best, second)`; `second` is `None` if only one point exists.
    ///
    /// # Panics
    ///
    /// Panics if `query` has the wrong dimension.
    pub fn nearest2(&self, query: &[f32], budget: SearchBudget) -> (Neighbor, Option<Neighbor>) {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let mut state = SearchState {
            best: [None, None],
            worst: f32::INFINITY,
            checks: 0,
            max_checks: match budget {
                SearchBudget::Exact => usize::MAX,
                SearchBudget::MaxChecks(c) => c.max(1),
            },
        };
        self.search_node(&self.root, query, &mut state);
        let best = state.best[0].expect("tree is non-empty");
        (best, state.best[1])
    }

    /// Finds the single nearest neighbour.
    pub fn nearest(&self, query: &[f32], budget: SearchBudget) -> Neighbor {
        self.nearest2(query, budget).0
    }

    /// Finds the two smallest neighbours of `query` under the *total*
    /// [`neighbor_order`] — distance first, payload breaking exact ties.
    ///
    /// Unlike [`nearest2`](Self::nearest2) with [`SearchBudget::Exact`]
    /// (where equal-distance winners depend on leaf visit order, i.e. on
    /// tree shape), this answer is a pure function of the indexed point
    /// *set*: the far half-space is pruned only when every point there is
    /// *strictly* farther than the retained worst, so equal-distance
    /// candidates elsewhere in the tree are always visited and the payload
    /// tie-break applies. That makes per-shard best-2 candidates merge into
    /// exactly the whole-tree answer at any shard count — the property the
    /// scatter-gather image match is gated on.
    ///
    /// # Panics
    ///
    /// Panics if `query` has the wrong dimension.
    pub fn nearest2_deterministic(&self, query: &[f32]) -> (Neighbor, Option<Neighbor>) {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let mut state = DetState {
            best: [None, None],
            worst: f32::INFINITY,
        };
        self.search_det(&self.root, query, &mut state);
        let best = state.best[0].expect("tree is non-empty");
        (best, state.best[1])
    }

    fn search_det(&self, node: &Node, query: &[f32], state: &mut DetState) {
        match node {
            Node::Leaf { points } => {
                for &i in points {
                    let e = &self.entries[i as usize];
                    state.offer(Neighbor {
                        distance_sq: dist_sq(&e.vector, query),
                        payload: e.payload,
                    });
                }
            }
            Node::Split {
                dim,
                value,
                left,
                right,
            } => {
                let diff = query[*dim] - value;
                let (near, far) = if diff < 0.0 {
                    (left, right)
                } else {
                    (right, left)
                };
                self.search_det(near, query, state);
                // Prune only when the far half-space is *strictly* beyond
                // the retained worst: a point at exactly `worst` distance
                // may still win on the payload tie-break.
                if diff * diff <= state.worst {
                    self.search_det(far, query, state);
                }
            }
        }
    }

    fn search_node(&self, node: &Node, query: &[f32], state: &mut SearchState) {
        match node {
            Node::Leaf { points } => {
                for &i in points {
                    if state.checks >= state.max_checks {
                        return;
                    }
                    state.checks += 1;
                    let e = &self.entries[i as usize];
                    state.offer(Neighbor {
                        distance_sq: dist_sq(&e.vector, query),
                        payload: e.payload,
                    });
                }
            }
            Node::Split {
                dim,
                value,
                left,
                right,
            } => {
                let diff = query[*dim] - value;
                let (near, far) = if diff < 0.0 {
                    (left, right)
                } else {
                    (right, left)
                };
                self.search_node(near, query, state);
                if state.checks >= state.max_checks {
                    return;
                }
                // Backtrack only if the splitting plane is closer than the
                // current worst of the two best (maintained incrementally
                // by `offer`, not re-derived per split).
                if diff * diff < state.worst {
                    self.search_node(far, query, state);
                }
            }
        }
    }
}

/// The deterministic neighbour ordering: squared distance first
/// (`total_cmp`), payload ascending as the tie-break. A total order, so any
/// candidate set has exactly one sorted arrangement — what
/// [`KdTree::nearest2_deterministic`] returns the first two of, and what a
/// scatter-gather merge of per-shard candidates must sort by to reproduce
/// the unsharded answer.
pub fn neighbor_order(a: &Neighbor, b: &Neighbor) -> std::cmp::Ordering {
    a.distance_sq
        .total_cmp(&b.distance_sq)
        .then(a.payload.cmp(&b.payload))
}

/// Best-2 state for the deterministic search: like `SearchState` but
/// unbudgeted and ordered by [`neighbor_order`] instead of raw distance.
struct DetState {
    best: [Option<Neighbor>; 2],
    /// Pruning bound: distance of the worst retained neighbour. Pruning
    /// decisions only ever fire once both slots are full (every split child
    /// holds more than one point), so the bound is always the second-best
    /// distance when it matters.
    worst: f32,
}

impl DetState {
    fn offer(&mut self, n: Neighbor) {
        match self.best[0] {
            None => self.best[0] = Some(n),
            Some(b0) if neighbor_order(&n, &b0).is_lt() => {
                self.best[1] = self.best[0];
                self.best[0] = Some(n);
            }
            Some(_) => match self.best[1] {
                None => self.best[1] = Some(n),
                Some(b1) if neighbor_order(&n, &b1).is_lt() => self.best[1] = Some(n),
                Some(_) => return,
            },
        }
        self.worst = self.best[1]
            .or(self.best[0])
            .map_or(f32::INFINITY, |x| x.distance_sq);
    }
}

struct SearchState {
    best: [Option<Neighbor>; 2],
    /// Pruning bound: distance of the worst retained neighbour (the second
    /// best once two are known, else the best, else infinity). Kept up to
    /// date by `offer` so split nodes test it directly.
    worst: f32,
    checks: usize,
    max_checks: usize,
}

impl SearchState {
    fn offer(&mut self, n: Neighbor) {
        match self.best[0] {
            None => self.best[0] = Some(n),
            Some(b0) if n.distance_sq < b0.distance_sq => {
                self.best[1] = self.best[0];
                self.best[0] = Some(n);
            }
            Some(_) => match self.best[1] {
                None => self.best[1] = Some(n),
                Some(b1) if n.distance_sq < b1.distance_sq => self.best[1] = Some(n),
                Some(_) => return,
            },
        }
        self.worst = self.best[1]
            .or(self.best[0])
            .map_or(f32::INFINITY, |x| x.distance_sq);
    }
}

/// Linear-scan exact nearest neighbour, the oracle for tests and ablations.
pub fn linear_nearest(points: &[(Vec<f32>, u32)], query: &[f32]) -> Option<Neighbor> {
    points
        .iter()
        .map(|(v, p)| Neighbor {
            distance_sq: dist_sq(v, query),
            payload: *p,
        })
        .min_by(|a, b| a.distance_sq.total_cmp(&b.distance_sq))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_points(n: usize, dim: usize, seed: u64) -> Vec<(Vec<f32>, u32)> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                (
                    (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
                    i as u32,
                )
            })
            .collect()
    }

    #[test]
    fn exact_search_matches_linear_scan() {
        let pts = random_points(300, 8, 1);
        let tree = KdTree::build(pts.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..50 {
            let q: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let expect = linear_nearest(&pts, &q).expect("non-empty");
            let got = tree.nearest(&q, SearchBudget::Exact);
            assert_eq!(got.payload, expect.payload);
            assert!((got.distance_sq - expect.distance_sq).abs() < 1e-6);
        }
    }

    #[test]
    fn approximate_search_is_close() {
        let pts = random_points(2000, 16, 3);
        let tree = KdTree::build(pts.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut hits_small = 0;
        let mut hits_large = 0;
        for _ in 0..100 {
            let q: Vec<f32> = (0..16).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let expect = linear_nearest(&pts, &q).expect("non-empty");
            let small = tree.nearest(&q, SearchBudget::MaxChecks(64));
            let large = tree.nearest(&q, SearchBudget::MaxChecks(512));
            hits_small += usize::from(small.payload == expect.payload);
            hits_large += usize::from(large.payload == expect.payload);
            // Even when approximate, the answer must not be wildly off.
            assert!(small.distance_sq <= expect.distance_sq * 4.0 + 1e-6);
        }
        // Recall improves with budget; a generous budget is near-exact.
        assert!(hits_large >= hits_small, "{hits_large} < {hits_small}");
        assert!(
            hits_large >= 70,
            "only {hits_large}/100 exact at 512 checks"
        );
        assert!(hits_small >= 15, "only {hits_small}/100 exact at 64 checks");
    }

    #[test]
    fn nearest2_orders_results() {
        let pts = vec![
            (vec![0.0, 0.0], 0),
            (vec![1.0, 0.0], 1),
            (vec![5.0, 5.0], 2),
        ];
        let tree = KdTree::build(pts);
        let (a, b) = tree.nearest2(&[0.1, 0.0], SearchBudget::Exact);
        assert_eq!(a.payload, 0);
        assert_eq!(b.expect("second").payload, 1);
        assert!(a.distance_sq <= b.expect("second").distance_sq);
    }

    #[test]
    fn single_point_tree() {
        let tree = KdTree::build(vec![(vec![1.0, 2.0], 7)]);
        let (a, b) = tree.nearest2(&[0.0, 0.0], SearchBudget::Exact);
        assert_eq!(a.payload, 7);
        assert!(b.is_none());
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn duplicate_points_are_handled() {
        let pts = vec![(vec![1.0, 1.0], 0); 40];
        let tree = KdTree::build(pts);
        let n = tree.nearest(&[1.0, 1.0], SearchBudget::Exact);
        assert_eq!(n.distance_sq, 0.0);
    }

    /// Oracle: the first two candidates under [`neighbor_order`] by full
    /// linear scan.
    fn det_oracle(points: &[(Vec<f32>, u32)], query: &[f32]) -> (Neighbor, Option<Neighbor>) {
        let mut all: Vec<Neighbor> = points
            .iter()
            .map(|(v, p)| Neighbor {
                distance_sq: dist_sq(v, query),
                payload: *p,
            })
            .collect();
        all.sort_by(neighbor_order);
        (all[0], all.get(1).copied())
    }

    #[test]
    fn deterministic_search_matches_lexicographic_oracle() {
        let pts = random_points(500, 8, 11);
        let tree = KdTree::build(pts.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        for _ in 0..60 {
            let q: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let (b, s) = tree.nearest2_deterministic(&q);
            let (eb, es) = det_oracle(&pts, &q);
            assert_eq!(
                (b.payload, b.distance_sq.to_bits()),
                (eb.payload, eb.distance_sq.to_bits())
            );
            assert_eq!(
                s.map(|n| (n.payload, n.distance_sq.to_bits())),
                es.map(|n| (n.payload, n.distance_sq.to_bits()))
            );
        }
    }

    #[test]
    fn deterministic_search_breaks_exact_ties_by_payload() {
        // Three copies of the query point under different payloads, buried
        // among enough filler that the tree actually splits.
        let mut pts = random_points(100, 4, 13);
        for (i, payload) in [(0usize, 9u32), (40, 2), (80, 5)] {
            pts[i] = (vec![0.25, 0.25, 0.25, 0.25], payload);
        }
        let tree = KdTree::build(pts);
        let (b, s) = tree.nearest2_deterministic(&[0.25, 0.25, 0.25, 0.25]);
        assert_eq!((b.distance_sq, b.payload), (0.0, 2));
        let s = s.expect("second");
        assert_eq!((s.distance_sq, s.payload), (0.0, 5));
    }

    #[test]
    fn deterministic_search_is_shard_invariant() {
        // Partitioning the point set across sub-trees and merging each
        // shard's best-2 under `neighbor_order` reproduces the whole-tree
        // answer, for every shard count.
        let pts = random_points(400, 6, 14);
        let full = KdTree::build(pts.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(15);
        for n in [1u32, 2, 3, 4, 8] {
            let shards: Vec<KdTree> = (0..n)
                .map(|i| {
                    KdTree::build(
                        pts.iter()
                            .filter(|(_, p)| p % n == i)
                            .cloned()
                            .collect::<Vec<_>>(),
                    )
                })
                .collect();
            for _ in 0..20 {
                let q: Vec<f32> = (0..6).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                let mut candidates: Vec<Neighbor> = Vec::new();
                for shard in &shards {
                    let (b, s) = shard.nearest2_deterministic(&q);
                    candidates.push(b);
                    candidates.extend(s);
                }
                candidates.sort_by(neighbor_order);
                let (b, s) = full.nearest2_deterministic(&q);
                assert_eq!(candidates[0], b, "shards={n}");
                assert_eq!(candidates.get(1).copied(), s, "shards={n}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "no points")]
    fn empty_build_panics() {
        let _ = KdTree::build(Vec::new());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_query_dim_panics() {
        let tree = KdTree::build(vec![(vec![0.0, 0.0], 0)]);
        let _ = tree.nearest(&[0.0], SearchBudget::Exact);
    }
}
