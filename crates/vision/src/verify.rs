//! Geometric verification of descriptor matches.
//!
//! Production mobile-visual-search pipelines (the Stanford MVS line of work
//! behind the paper's image database) follow ANN matching with a geometric
//! consistency check: the putative correspondences must agree on a single
//! similarity transform (scale + rotation + translation). This module
//! estimates that transform with RANSAC and counts inliers, which
//! [`crate::db::ImageDatabase::match_image_verified`] uses to re-rank
//! candidate images.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A correspondence: a point in the query image and its putative match in
/// a database image.
pub type Correspondence = ((f32, f32), (f32, f32));

/// A 2-D similarity transform `p' = s·R(θ)·p + t`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Similarity {
    /// Uniform scale factor.
    pub scale: f32,
    /// Rotation in radians.
    pub rotation: f32,
    /// Translation, applied after rotation and scale.
    pub translate: (f32, f32),
}

impl Similarity {
    /// Applies the transform to a point.
    pub fn apply(&self, p: (f32, f32)) -> (f32, f32) {
        let (c, s) = (self.rotation.cos(), self.rotation.sin());
        (
            self.scale * (c * p.0 - s * p.1) + self.translate.0,
            self.scale * (s * p.0 + c * p.1) + self.translate.1,
        )
    }

    /// Estimates the similarity mapping `(a1, a2)` onto `(b1, b2)`.
    ///
    /// Returns `None` for degenerate (coincident) source points.
    pub fn from_two_pairs(
        a1: (f32, f32),
        b1: (f32, f32),
        a2: (f32, f32),
        b2: (f32, f32),
    ) -> Option<Similarity> {
        let da = (a2.0 - a1.0, a2.1 - a1.1);
        let db = (b2.0 - b1.0, b2.1 - b1.1);
        let len_a = (da.0 * da.0 + da.1 * da.1).sqrt();
        let len_b = (db.0 * db.0 + db.1 * db.1).sqrt();
        if len_a < 1e-6 {
            return None;
        }
        let scale = len_b / len_a;
        let rotation = db.1.atan2(db.0) - da.1.atan2(da.0);
        let (c, s) = (rotation.cos(), rotation.sin());
        let translate = (
            b1.0 - scale * (c * a1.0 - s * a1.1),
            b1.1 - scale * (s * a1.0 + c * a1.1),
        );
        Some(Similarity {
            scale,
            rotation,
            translate,
        })
    }
}

/// The outcome of RANSAC verification.
#[derive(Debug, Clone, PartialEq)]
pub struct Verification {
    /// The consensus transform.
    pub transform: Similarity,
    /// Number of correspondences within tolerance of the transform.
    pub inliers: usize,
    /// Indices of the inlier correspondences.
    pub inlier_indices: Vec<usize>,
}

/// RANSAC configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RansacConfig {
    /// Number of random minimal samples to draw.
    pub iterations: usize,
    /// Inlier reprojection tolerance in pixels.
    pub tolerance: f32,
    /// Reject transforms with implausible scale (outside `1/max..max`).
    pub max_scale: f32,
}

impl Default for RansacConfig {
    fn default() -> Self {
        Self {
            iterations: 64,
            tolerance: 6.0,
            max_scale: 4.0,
        }
    }
}

/// Finds the similarity transform with the largest consensus among the
/// `(source, destination)` correspondences. Deterministic for a given
/// input (the RNG is seeded from the correspondence count).
///
/// Returns `None` when fewer than 2 correspondences exist or no sample
/// yields at least 2 inliers beyond the minimal pair.
pub fn ransac_similarity(pairs: &[Correspondence], config: &RansacConfig) -> Option<Verification> {
    if pairs.len() < 2 {
        return None;
    }
    let mut rng = ChaCha8Rng::seed_from_u64(0x9a5c ^ pairs.len() as u64);
    let mut best: Option<Verification> = None;
    for _ in 0..config.iterations {
        let i = rng.gen_range(0..pairs.len());
        let mut j = rng.gen_range(0..pairs.len());
        if i == j {
            j = (j + 1) % pairs.len();
        }
        let Some(t) = Similarity::from_two_pairs(pairs[i].0, pairs[i].1, pairs[j].0, pairs[j].1)
        else {
            continue;
        };
        if t.scale > config.max_scale || t.scale < 1.0 / config.max_scale {
            continue;
        }
        let tol_sq = config.tolerance * config.tolerance;
        let inlier_indices: Vec<usize> = pairs
            .iter()
            .enumerate()
            .filter(|(_, (src, dst))| {
                let p = t.apply(*src);
                let dx = p.0 - dst.0;
                let dy = p.1 - dst.1;
                dx * dx + dy * dy <= tol_sq
            })
            .map(|(k, _)| k)
            .collect();
        if inlier_indices.len() >= 4
            && best
                .as_ref()
                .is_none_or(|b| inlier_indices.len() > b.inliers)
        {
            best = Some(Verification {
                transform: t,
                inliers: inlier_indices.len(),
                inlier_indices,
            });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transform_points(t: &Similarity, pts: &[(f32, f32)]) -> Vec<Correspondence> {
        pts.iter().map(|&p| (p, t.apply(p))).collect()
    }

    fn grid() -> Vec<(f32, f32)> {
        (0..5)
            .flat_map(|x| (0..5).map(move |y| (x as f32 * 13.0, y as f32 * 9.0 + x as f32)))
            .collect()
    }

    #[test]
    fn recovers_a_known_transform() {
        let truth = Similarity {
            scale: 1.2,
            rotation: 0.3,
            translate: (10.0, -5.0),
        };
        let pairs = transform_points(&truth, &grid());
        let v = ransac_similarity(&pairs, &RansacConfig::default()).expect("consensus");
        assert_eq!(v.inliers, pairs.len());
        assert!((v.transform.scale - truth.scale).abs() < 0.05);
        assert!((v.transform.rotation - truth.rotation).abs() < 0.05);
    }

    #[test]
    fn tolerates_outliers() {
        let truth = Similarity {
            scale: 0.9,
            rotation: -0.2,
            translate: (3.0, 4.0),
        };
        let mut pairs = transform_points(&truth, &grid());
        // Corrupt 40% of the correspondences.
        let n = pairs.len();
        for k in 0..(n * 2 / 5) {
            pairs[k * 2 % n].1 = (999.0 + k as f32 * 31.0, -777.0 - k as f32 * 17.0);
        }
        let clean = pairs
            .iter()
            .filter(|(s, d)| {
                let p = truth.apply(*s);
                (p.0 - d.0).abs() < 1.0 && (p.1 - d.1).abs() < 1.0
            })
            .count();
        let v = ransac_similarity(&pairs, &RansacConfig::default()).expect("consensus");
        assert!(
            v.inliers >= clean.saturating_sub(1),
            "{} < {clean}",
            v.inliers
        );
        assert!((v.transform.scale - truth.scale).abs() < 0.05);
    }

    #[test]
    fn random_correspondences_fail_verification() {
        // Scattered matches with no geometric consensus.
        let pairs: Vec<Correspondence> = (0..30)
            .map(|i| {
                let i = i as f32;
                (
                    (i * 37.0 % 101.0, i * 53.0 % 97.0),
                    (i * 71.0 % 89.0, i * 29.0 % 103.0),
                )
            })
            .collect();
        match ransac_similarity(&pairs, &RansacConfig::default()) {
            None => {}
            Some(v) => assert!(
                (v.inliers as f64) < pairs.len() as f64 * 0.4,
                "spurious consensus of {}",
                v.inliers
            ),
        }
    }

    #[test]
    fn too_few_pairs_returns_none() {
        assert!(ransac_similarity(&[], &RansacConfig::default()).is_none());
        assert!(ransac_similarity(&[((0.0, 0.0), (1.0, 1.0))], &RansacConfig::default()).is_none());
    }

    #[test]
    fn degenerate_sample_is_skipped() {
        assert!(
            Similarity::from_two_pairs((1.0, 1.0), (2.0, 2.0), (1.0, 1.0), (3.0, 3.0)).is_none()
        );
    }

    #[test]
    fn implausible_scales_are_rejected() {
        let truth = Similarity {
            scale: 10.0, // beyond max_scale 4.0
            rotation: 0.0,
            translate: (0.0, 0.0),
        };
        let pairs = transform_points(&truth, &grid());
        assert!(ransac_similarity(&pairs, &RansacConfig::default()).is_none());
    }
}
