//! Image database and matching: the IMM service back-end.
//!
//! Mirrors the paper's image-matching flow (Section 2.3.2): descriptors from
//! the input image are matched against the database descriptors with an ANN
//! search and a ratio test; "the database image with the highest number of
//! matches is returned".

use std::time::{Duration, Instant};

use crate::ann::{neighbor_order, KdTree, Neighbor, SearchBudget};
use crate::image::GrayImage;
use crate::integral::IntegralImage;
use crate::surf::{self, Descriptor, KeyPoint, SurfConfig};
use crate::verify::{ransac_similarity, Correspondence, RansacConfig, Verification};

/// Identifier of a database image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ImageId(pub u32);

/// Matching configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchConfig {
    /// SURF detector/descriptor settings.
    pub surf: SurfConfig,
    /// Lowe ratio test threshold (best/second distance).
    pub ratio: f32,
    /// ANN search budget.
    pub budget: SearchBudget,
}

impl Default for MatchConfig {
    fn default() -> Self {
        Self {
            surf: SurfConfig::default(),
            ratio: 0.75,
            budget: SearchBudget::MaxChecks(96),
        }
    }
}

/// Per-stage timing of one image-matching query (FE / FD / ANN).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ImmTiming {
    /// Feature extraction (detector) time.
    pub feature_extraction: Duration,
    /// Feature description time.
    pub feature_description: Duration,
    /// ANN search + voting time.
    pub ann_search: Duration,
    /// Total wall-clock.
    pub total: Duration,
}

/// SURF features extracted from one query image, reusable across shard
/// probes: the scatter-gather match extracts once and sends the same
/// features to every database shard instead of re-detecting per shard.
#[derive(Debug, Clone)]
pub struct QueryFeatures {
    keypoints: Vec<KeyPoint>,
    descriptors: Vec<Descriptor>,
    feature_extraction: Duration,
    feature_description: Duration,
}

impl QueryFeatures {
    /// Number of query keypoints.
    pub fn len(&self) -> usize {
        self.keypoints.len()
    }

    /// Whether the query produced no keypoints.
    pub fn is_empty(&self) -> bool {
        self.keypoints.is_empty()
    }
}

/// One shard's contribution to a scatter-gather match: for every query
/// keypoint, the shard's best two database descriptors under the
/// deterministic [`neighbor_order`] (distance, then global descriptor id).
/// Payloads are *global* descriptor indices, so candidates from different
/// shards merge under the same total order the unsharded deterministic
/// search uses.
#[derive(Debug, Clone)]
pub struct PartialMatch {
    candidates: Vec<[Option<Neighbor>; 2]>,
    /// Time this shard spent in ANN search (shards run concurrently in a
    /// cluster; the merged timing charges the slowest shard).
    pub ann_search: Duration,
}

/// The result of matching a query image against the database.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchResult {
    /// Best-matching image, or `None` when nothing passed the ratio test.
    pub best: Option<ImageId>,
    /// Votes per database image, sorted descending.
    pub votes: Vec<(ImageId, usize)>,
    /// Number of query keypoints.
    pub query_keypoints: usize,
    /// Geometric verification of the winning image, when
    /// [`ImageDatabase::match_image_verified`] was used and a consensus
    /// transform was found.
    pub verification: Option<Verification>,
    /// Per-stage timing.
    pub timing: ImmTiming,
}

/// A database of SURF-indexed images.
#[derive(Debug)]
pub struct ImageDatabase {
    config: MatchConfig,
    tree: Option<KdTree>,
    num_images: u32,
    descriptor_count: usize,
    /// Image id of each indexed descriptor (tree payloads index this).
    desc_image: Vec<u32>,
    /// Keypoint position of each indexed descriptor, for geometric
    /// verification.
    desc_pos: Vec<(f32, f32)>,
}

/// Incremental database construction, supporting multiple enrolled views
/// per image (the Stanford MVS data set photographs each object several
/// times; enrolling extra views makes matching robust to stronger
/// viewpoint changes).
#[derive(Debug)]
pub struct ImageDatabaseBuilder {
    config: MatchConfig,
    points: Vec<(Vec<f32>, u32)>,
    desc_image: Vec<u32>,
    desc_pos: Vec<(f32, f32)>,
    num_images: u32,
}

impl ImageDatabaseBuilder {
    /// Creates an empty builder.
    pub fn new(config: MatchConfig) -> Self {
        Self {
            config,
            points: Vec::new(),
            desc_image: Vec::new(),
            desc_pos: Vec::new(),
            num_images: 0,
        }
    }

    /// Enrolls a new image; returns its id.
    pub fn add_image(&mut self, img: &GrayImage) -> ImageId {
        let id = ImageId(self.num_images);
        self.num_images += 1;
        self.add_view(id, img);
        id
    }

    /// Enrolls an additional view of an existing image.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by a prior [`add_image`] call.
    ///
    /// [`add_image`]: Self::add_image
    pub fn add_view(&mut self, id: ImageId, img: &GrayImage) {
        assert!(id.0 < self.num_images, "unknown image id {id:?}");
        let (kps, descs) = surf::extract(img, &self.config.surf);
        for (kp, d) in kps.iter().zip(descs) {
            // Payload is the global descriptor index; image id and keypoint
            // geometry live in parallel arrays.
            self.points.push((d.0, self.desc_image.len() as u32));
            self.desc_image.push(id.0);
            self.desc_pos.push((kp.x, kp.y));
        }
    }

    /// Finalizes the index.
    pub fn build(self) -> ImageDatabase {
        let descriptor_count = self.points.len();
        let tree = if self.points.is_empty() {
            None
        } else {
            Some(KdTree::build(self.points))
        };
        ImageDatabase {
            config: self.config,
            tree,
            num_images: self.num_images,
            descriptor_count,
            desc_image: self.desc_image,
            desc_pos: self.desc_pos,
        }
    }
}

impl ImageDatabase {
    /// Builds a database by extracting and indexing features from `images`
    /// (one view each).
    pub fn build<'a, I>(images: I, config: MatchConfig) -> Self
    where
        I: IntoIterator<Item = &'a GrayImage>,
    {
        let mut builder = ImageDatabaseBuilder::new(config);
        for img in images {
            builder.add_image(img);
        }
        builder.build()
    }

    /// Serializes the database (configuration + indexed descriptors); the
    /// k-d tree is rebuilt on load.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = sirius_codec::Encoder::new();
        e.tag("sirius_imm_v1");
        e.u32(self.num_images);
        e.f32(self.config.ratio);
        match self.config.budget {
            SearchBudget::Exact => e.u32(0),
            SearchBudget::MaxChecks(c) => e.u32(c as u32),
        };
        e.u32(self.config.surf.octaves as u32);
        e.f32(self.config.surf.threshold);
        e.u32(self.config.surf.init_step as u32);
        e.bool(self.config.surf.upright);
        match &self.tree {
            None => {
                e.u32(0);
            }
            Some(tree) => {
                e.u32(tree.len() as u32);
                for (v, payload) in tree.iter_points() {
                    e.u32(payload);
                    e.f32_slice(v);
                }
            }
        }
        e.u32_slice(&self.desc_image);
        e.u32(self.desc_pos.len() as u32);
        for &(x, y) in &self.desc_pos {
            e.f32(x);
            e.f32(y);
        }
        e.into_bytes()
    }

    /// Restores a database saved with [`ImageDatabase::to_bytes`].
    ///
    /// # Errors
    ///
    /// Fails on malformed, truncated or inconsistent bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, sirius_codec::DecodeError> {
        let mut d = sirius_codec::Decoder::new(bytes);
        d.tag("sirius_imm_v1")?;
        let num_images = d.u32()?;
        let ratio = d.f32()?;
        let budget = match d.u32()? {
            0 => SearchBudget::Exact,
            c => SearchBudget::MaxChecks(c as usize),
        };
        let config = MatchConfig {
            surf: SurfConfig {
                octaves: d.u32()? as usize,
                threshold: d.f32()?,
                init_step: d.u32()? as usize,
                upright: d.bool()?,
                // Execution policy is a runtime knob, not part of the index.
                ..SurfConfig::default()
            },
            ratio,
            budget,
        };
        let n = d.u32()? as usize;
        let mut points = Vec::with_capacity(n);
        for _ in 0..n {
            let payload = d.u32()?;
            points.push((d.f32_vec()?, payload));
        }
        let desc_image = d.u32_vec()?;
        let np = d.u32()? as usize;
        let mut desc_pos = Vec::with_capacity(np);
        for _ in 0..np {
            let x = d.f32()?;
            let y = d.f32()?;
            desc_pos.push((x, y));
        }
        d.finish()?;
        if desc_image.len() != n
            || desc_pos.len() != n
            || points.iter().any(|&(_, p)| p as usize >= n)
            || desc_image.iter().any(|&img| img >= num_images)
        {
            return Err(sirius_codec::DecodeError {
                message: "inconsistent descriptor tables".into(),
                offset: 0,
            });
        }
        let descriptor_count = points.len();
        let tree = if points.is_empty() {
            None
        } else {
            Some(KdTree::build(points))
        };
        Ok(Self {
            config,
            tree,
            num_images,
            descriptor_count,
            desc_image,
            desc_pos,
        })
    }

    /// Number of database images.
    pub fn num_images(&self) -> usize {
        self.num_images as usize
    }

    /// Number of indexed descriptors.
    pub fn num_descriptors(&self) -> usize {
        self.descriptor_count
    }

    /// Applies a multicore execution policy to query-side SURF extraction,
    /// description and ANN voting. Results are bit-identical to the serial
    /// path at every thread count and strategy.
    pub fn set_exec_policy(&mut self, policy: sirius_par::ExecPolicy) {
        self.config.surf.exec = policy;
    }

    /// Builds shard `shard` of `num_shards`: the descriptor index is
    /// partitioned by enrolled image (`image_id % num_shards`), so each
    /// database image's descriptors live on exactly one shard, while the
    /// global descriptor→image and descriptor→position tables (and the
    /// image count) are carried whole. Tree payloads stay *global*
    /// descriptor indices, which keeps the deterministic
    /// (distance, payload) candidate order consistent across shards — the
    /// property [`merge_partials`](Self::merge_partials) needs to
    /// reproduce the whole-database answer exactly.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is zero or `shard >= num_shards`.
    pub fn shard(&self, shard: u32, num_shards: u32) -> ImageDatabase {
        assert!(
            num_shards > 0 && shard < num_shards,
            "invalid shard {shard}/{num_shards}"
        );
        let points: Vec<(Vec<f32>, u32)> = self
            .tree
            .iter()
            .flat_map(KdTree::iter_points)
            .filter(|&(_, p)| self.desc_image[p as usize] % num_shards == shard)
            .map(|(v, p)| (v.to_vec(), p))
            .collect();
        let descriptor_count = points.len();
        ImageDatabase {
            config: self.config,
            tree: if points.is_empty() {
                None
            } else {
                Some(KdTree::build(points))
            },
            num_images: self.num_images,
            descriptor_count,
            desc_image: self.desc_image.clone(),
            desc_pos: self.desc_pos.clone(),
        }
    }

    /// Extracts query-side SURF features once, for reuse across shard
    /// probes ([`match_partial`](Self::match_partial)); detector and
    /// descriptor timings are carried into the merged result.
    pub fn extract_query(&self, query: &GrayImage) -> QueryFeatures {
        let t = Instant::now();
        let ii = IntegralImage::new(query);
        let keypoints = surf::detect_on_integral(&ii, &self.config.surf);
        let feature_extraction = t.elapsed();
        let t = Instant::now();
        let (_, descriptors) = surf::describe_on_integral(&ii, &keypoints, &self.config.surf);
        let feature_description = t.elapsed();
        QueryFeatures {
            keypoints,
            descriptors,
            feature_extraction,
            feature_description,
        }
    }

    /// Runs this shard's half of a scatter-gather match: for every query
    /// keypoint, the shard's best two descriptors under the deterministic
    /// exact search ([`KdTree::nearest2_deterministic`]). Exactness is what
    /// makes the merge shard-count invariant: the union of per-shard best-2
    /// always contains the global best-2.
    pub fn match_partial(&self, features: &QueryFeatures) -> PartialMatch {
        let t = Instant::now();
        let candidates = match &self.tree {
            None => vec![[None, None]; features.descriptors.len()],
            Some(tree) => self
                .config
                .surf
                .exec
                .map_collect(features.descriptors.len(), |i| {
                    let (best, second) = tree.nearest2_deterministic(&features.descriptors[i].0);
                    [Some(best), second]
                }),
        };
        PartialMatch {
            candidates,
            ann_search: t.elapsed(),
        }
    }

    /// Merges per-shard [`PartialMatch`]es into a [`MatchResult`]: each
    /// keypoint's global best-2 is the first two of the candidate union
    /// under [`neighbor_order`], then the same ratio test and
    /// vote-count/image-id ordering as [`match_image`](Self::match_image)
    /// decide the winner. The output is a pure function of the query and
    /// the *union* of the shards' descriptors — identical for every shard
    /// count, including one. Geometric verification is not performed
    /// (`verification` is `None`); the merged `ann_search` timing charges
    /// the slowest shard (shards run concurrently in a cluster) plus the
    /// merge itself.
    ///
    /// # Panics
    ///
    /// Panics if a partial was produced from different query features.
    pub fn merge_partials(
        &self,
        features: &QueryFeatures,
        partials: &[PartialMatch],
    ) -> MatchResult {
        let t_merge = Instant::now();
        let shard_time = partials
            .iter()
            .map(|p| p.ann_search)
            .max()
            .unwrap_or_default();
        let mut counts = vec![0usize; self.num_images as usize];
        for i in 0..features.keypoints.len() {
            let mut union: Vec<Neighbor> = Vec::with_capacity(2 * partials.len());
            for partial in partials {
                assert_eq!(
                    partial.candidates.len(),
                    features.keypoints.len(),
                    "partial match from different query features"
                );
                union.extend(partial.candidates[i].into_iter().flatten());
            }
            union.sort_by(neighbor_order);
            let Some(&best) = union.first() else { continue };
            let best_image = self.desc_image[best.payload as usize];
            let passes = match union.get(1) {
                Some(s) if self.desc_image[s.payload as usize] != best_image => {
                    best.distance_sq < self.config.ratio * self.config.ratio * s.distance_sq
                }
                // Second neighbour from the same image (or absent) means
                // the match is unambiguous between images.
                _ => true,
            };
            if passes {
                counts[best_image as usize] += 1;
            }
        }
        let mut votes: Vec<(ImageId, usize)> = counts
            .into_iter()
            .enumerate()
            .map(|(i, c)| (ImageId(i as u32), c))
            .filter(|&(_, c)| c > 0)
            .collect();
        votes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let ann_search = shard_time + t_merge.elapsed();
        MatchResult {
            best: votes.first().map(|&(id, _)| id),
            votes,
            query_keypoints: features.keypoints.len(),
            verification: None,
            timing: ImmTiming {
                feature_extraction: features.feature_extraction,
                feature_description: features.feature_description,
                ann_search,
                total: features.feature_extraction + features.feature_description + ann_search,
            },
        }
    }

    /// Matches a query image, reporting votes and per-stage timing.
    pub fn match_image(&self, query: &GrayImage) -> MatchResult {
        self.match_internal(query, false)
    }

    /// Matches a query image and geometrically verifies the candidates:
    /// putative correspondences must agree on a similarity transform
    /// (RANSAC), and candidates are re-ranked by inlier count.
    pub fn match_image_verified(&self, query: &GrayImage) -> MatchResult {
        self.match_internal(query, true)
    }

    fn match_internal(&self, query: &GrayImage, verify: bool) -> MatchResult {
        let t_total = Instant::now();
        let t = Instant::now();
        let ii = IntegralImage::new(query);
        let kps = surf::detect_on_integral(&ii, &self.config.surf);
        let feature_extraction = t.elapsed();

        let t = Instant::now();
        let (_, descs) = surf::describe_on_integral(&ii, &kps, &self.config.surf);
        let feature_description = t.elapsed();

        let t = Instant::now();
        let mut counts = vec![0usize; self.num_images as usize];
        // Per-image correspondences: (query position, database position).
        let mut correspondences: Vec<Vec<Correspondence>> =
            vec![Vec::new(); self.num_images as usize];
        if let Some(tree) = &self.tree {
            // Each keypoint votes independently; the serial accumulation
            // below keeps vote and correspondence order deterministic.
            let matches: Vec<Option<(u32, Correspondence)>> =
                self.config.surf.exec.map_collect(kps.len(), |i| {
                    let (kp, d) = (&kps[i], &descs[i]);
                    let (best, second) = tree.nearest2(&d.0, self.config.budget);
                    let best_image = self.desc_image[best.payload as usize];
                    let passes = match second {
                        Some(s) if self.desc_image[s.payload as usize] != best_image => {
                            best.distance_sq < self.config.ratio * self.config.ratio * s.distance_sq
                        }
                        // Second neighbour from the same image (or absent) means
                        // the match is unambiguous between images.
                        _ => true,
                    };
                    passes.then(|| {
                        (
                            best_image,
                            ((kp.x, kp.y), self.desc_pos[best.payload as usize]),
                        )
                    })
                });
            for (best_image, corr) in matches.into_iter().flatten() {
                counts[best_image as usize] += 1;
                if verify {
                    correspondences[best_image as usize].push(corr);
                }
            }
        }
        let mut votes: Vec<(ImageId, usize)> = counts
            .into_iter()
            .enumerate()
            .map(|(i, c)| (ImageId(i as u32), c))
            .filter(|&(_, c)| c > 0)
            .collect();
        votes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

        let mut verification = None;
        if verify && !votes.is_empty() {
            // Verify the top candidates and re-rank by inlier count.
            let ransac = RansacConfig::default();
            let mut verified: Vec<(ImageId, usize, Option<Verification>)> = votes
                .iter()
                .take(3)
                .map(|&(id, v)| {
                    let ver = ransac_similarity(&correspondences[id.0 as usize], &ransac);
                    let inliers = ver.as_ref().map_or(0, |x| x.inliers);
                    (id, inliers.max(usize::from(v > 0)), ver)
                })
                .collect();
            verified.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            if let Some((winner, _, ver)) = verified.into_iter().next() {
                // Promote the geometrically strongest candidate.
                if let Some(pos) = votes.iter().position(|&(id, _)| id == winner) {
                    let entry = votes.remove(pos);
                    votes.insert(0, entry);
                }
                verification = ver;
            }
        }
        let ann_search = t.elapsed();

        MatchResult {
            best: votes.first().map(|&(id, _)| id),
            votes,
            query_keypoints: kps.len(),
            verification,
            timing: ImmTiming {
                feature_extraction,
                feature_description,
                ann_search,
                total: t_total.elapsed(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    fn build_db(n: usize) -> (ImageDatabase, Vec<GrayImage>) {
        let scenes: Vec<GrayImage> = (0..n as u64)
            .map(|s| synth::generate_scene(s, 160, 160))
            .collect();
        let db = ImageDatabase::build(scenes.iter(), MatchConfig::default());
        (db, scenes)
    }

    #[test]
    fn identical_queries_match_their_source() {
        let (db, scenes) = build_db(6);
        assert_eq!(db.num_images(), 6);
        assert!(db.num_descriptors() > 20);
        for (i, scene) in scenes.iter().enumerate() {
            let r = db.match_image(scene);
            assert_eq!(r.best, Some(ImageId(i as u32)), "image {i}");
        }
    }

    #[test]
    fn transformed_views_match_their_source() {
        let (db, scenes) = build_db(6);
        let mut correct = 0;
        for (i, scene) in scenes.iter().enumerate() {
            let view = synth::random_view(scene, 1000 + i as u64);
            let r = db.match_image(&view);
            if r.best == Some(ImageId(i as u32)) {
                correct += 1;
            }
        }
        assert!(correct >= 5, "only {correct}/6 views matched");
    }

    #[test]
    fn timing_is_populated() {
        let (db, scenes) = build_db(2);
        let r = db.match_image(&scenes[0]);
        assert!(r.timing.total >= r.timing.ann_search);
        assert!(r.timing.feature_extraction > Duration::ZERO);
        assert!(r.query_keypoints > 0);
    }

    #[test]
    fn empty_database_matches_nothing() {
        let db = ImageDatabase::build(std::iter::empty(), MatchConfig::default());
        let query = synth::generate_scene(3, 96, 96);
        let r = db.match_image(&query);
        assert_eq!(r.best, None);
        assert!(r.votes.is_empty());
    }

    #[test]
    fn votes_are_sorted_descending() {
        let (db, scenes) = build_db(4);
        let r = db.match_image(&scenes[2]);
        for pair in r.votes.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }

    #[test]
    fn scatter_gather_match_is_shard_count_invariant() {
        let (db, scenes) = build_db(6);
        for (qi, scene) in scenes.iter().enumerate() {
            let query = synth::random_view(scene, 7000 + qi as u64);
            let features = db.extract_query(&query);
            let reference = db.merge_partials(&features, &[db.match_partial(&features)]);
            for n in [2u32, 3, 4, 8] {
                let partials: Vec<PartialMatch> = (0..n)
                    .map(|i| db.shard(i, n).match_partial(&features))
                    .collect();
                let merged = db.merge_partials(&features, &partials);
                assert_eq!(merged.best, reference.best, "query {qi} shards {n}");
                assert_eq!(merged.votes, reference.votes, "query {qi} shards {n}");
                assert_eq!(merged.query_keypoints, reference.query_keypoints);
            }
        }
    }

    #[test]
    fn scatter_gather_agrees_with_direct_match_on_source_views() {
        // The merged path is exact where `match_image` is budgeted, so vote
        // counts may differ — but the winning image must agree on views of
        // the enrolled scenes (the pipeline-level quantity).
        let (db, scenes) = build_db(6);
        for (qi, scene) in scenes.iter().enumerate() {
            let query = synth::random_view(scene, 8000 + qi as u64);
            let features = db.extract_query(&query);
            let partials: Vec<PartialMatch> = (0..3u32)
                .map(|i| db.shard(i, 3).match_partial(&features))
                .collect();
            let merged = db.merge_partials(&features, &partials);
            assert_eq!(merged.best, db.match_image(&query).best, "query {qi}");
        }
    }

    #[test]
    fn shards_partition_descriptors_and_keep_global_tables() {
        let (db, _) = build_db(5);
        let n = 3u32;
        let shards: Vec<ImageDatabase> = (0..n).map(|i| db.shard(i, n)).collect();
        let total: usize = shards.iter().map(ImageDatabase::num_descriptors).sum();
        assert_eq!(total, db.num_descriptors());
        for s in &shards {
            assert_eq!(s.num_images(), db.num_images());
            assert_eq!(s.desc_image, db.desc_image);
        }
    }

    #[test]
    fn empty_shard_contributes_no_candidates() {
        // One image, two shards: one shard holds everything, the other is
        // empty and must merge as a no-op.
        let (db, scenes) = build_db(1);
        let features = db.extract_query(&scenes[0]);
        let partials: Vec<PartialMatch> = (0..2u32)
            .map(|i| db.shard(i, 2).match_partial(&features))
            .collect();
        let merged = db.merge_partials(&features, &partials);
        let reference = db.merge_partials(&features, &[db.match_partial(&features)]);
        assert_eq!(merged.best, reference.best);
        assert_eq!(merged.votes, reference.votes);
    }

    #[test]
    #[should_panic(expected = "invalid shard")]
    fn shard_index_out_of_range_panics() {
        let (db, _) = build_db(1);
        let _ = db.shard(3, 3);
    }
}

#[cfg(test)]
mod multiview_tests {
    use super::*;
    use crate::synth::{self, ViewConfig};

    fn strong_view(scene: &GrayImage, seed: u64) -> GrayImage {
        synth::render_view(
            scene,
            &ViewConfig {
                scale: 0.7,
                rotation: 0.45,
                translate: (12.0, -10.0),
                noise: 0.02,
            },
            seed,
        )
    }

    #[test]
    fn multiview_enrollment_improves_strong_transform_matching() {
        let scenes: Vec<GrayImage> = (0..5u64)
            .map(|s| synth::generate_scene(500 + s, 160, 160))
            .collect();
        // Single-view database.
        let single = ImageDatabase::build(scenes.iter(), MatchConfig::default());
        // Multi-view database: enroll two moderate extra views per image.
        let mut builder = ImageDatabaseBuilder::new(MatchConfig::default());
        for scene in &scenes {
            let id = builder.add_image(scene);
            builder.add_view(id, &synth::random_view(scene, 42 + u64::from(id.0)));
            builder.add_view(id, &synth::random_view(scene, 142 + u64::from(id.0)));
        }
        let multi = builder.build();
        assert!(multi.num_descriptors() > single.num_descriptors());

        let mut single_hits = 0;
        let mut multi_hits = 0;
        for (i, scene) in scenes.iter().enumerate() {
            let q = strong_view(scene, 900 + i as u64);
            if single.match_image(&q).best == Some(ImageId(i as u32)) {
                single_hits += 1;
            }
            if multi.match_image(&q).best == Some(ImageId(i as u32)) {
                multi_hits += 1;
            }
        }
        assert!(
            multi_hits >= single_hits,
            "multi {multi_hits} vs single {single_hits}"
        );
        assert!(multi_hits >= 3, "multi-view only matched {multi_hits}/5");
    }

    #[test]
    #[should_panic(expected = "unknown image id")]
    fn view_for_unknown_id_panics() {
        let mut b = ImageDatabaseBuilder::new(MatchConfig::default());
        let img = synth::generate_scene(1, 96, 96);
        b.add_view(ImageId(0), &img);
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;
    use crate::synth;

    #[test]
    fn database_round_trips_through_bytes() {
        let scenes: Vec<GrayImage> = (0..4u64)
            .map(|s| synth::generate_scene(700 + s, 128, 128))
            .collect();
        let db = ImageDatabase::build(scenes.iter(), MatchConfig::default());
        let bytes = db.to_bytes();
        let restored = ImageDatabase::from_bytes(&bytes).expect("decode");
        assert_eq!(restored.num_images(), db.num_images());
        assert_eq!(restored.num_descriptors(), db.num_descriptors());
        for (i, scene) in scenes.iter().enumerate() {
            let view = synth::random_view(scene, 70 + i as u64);
            assert_eq!(
                db.match_image(&view).best,
                restored.match_image(&view).best,
                "image {i}"
            );
        }
    }

    #[test]
    fn corrupted_database_bytes_rejected() {
        let scenes = [synth::generate_scene(1, 96, 96)];
        let db = ImageDatabase::build(scenes.iter(), MatchConfig::default());
        let mut bytes = db.to_bytes();
        bytes[5] ^= 0x40;
        assert!(ImageDatabase::from_bytes(&bytes).is_err());
        assert!(ImageDatabase::from_bytes(&bytes[..8]).is_err());
    }

    #[test]
    fn empty_database_round_trips() {
        let db = ImageDatabase::build(std::iter::empty(), MatchConfig::default());
        let restored = ImageDatabase::from_bytes(&db.to_bytes()).expect("decode");
        assert_eq!(restored.num_images(), 0);
        assert_eq!(restored.num_descriptors(), 0);
    }
}

#[cfg(test)]
mod verified_match_tests {
    use super::*;
    use crate::synth;

    #[test]
    fn verified_matching_finds_consensus_on_true_views() {
        let scenes: Vec<GrayImage> = (0..5u64)
            .map(|s| synth::generate_scene(300 + s, 160, 160))
            .collect();
        let db = ImageDatabase::build(scenes.iter(), MatchConfig::default());
        let mut verified_hits = 0;
        let mut with_consensus = 0;
        for (i, scene) in scenes.iter().enumerate() {
            let view = synth::random_view(scene, 40 + i as u64);
            let r = db.match_image_verified(&view);
            if r.best == Some(ImageId(i as u32)) {
                verified_hits += 1;
            }
            if let Some(v) = &r.verification {
                with_consensus += 1;
                assert!(v.inliers >= 4);
                // The recovered transform's scale must be plausible for a
                // random_view (0.85..1.2).
                assert!(
                    (0.5..=2.0).contains(&v.transform.scale),
                    "{}",
                    v.transform.scale
                );
            }
        }
        assert!(verified_hits >= 4, "only {verified_hits}/5 matched");
        assert!(with_consensus >= 3, "only {with_consensus}/5 verified");
    }

    #[test]
    fn plain_match_has_no_verification() {
        let scenes = [synth::generate_scene(9, 128, 128)];
        let db = ImageDatabase::build(scenes.iter(), MatchConfig::default());
        let r = db.match_image(&scenes[0]);
        assert!(r.verification.is_none());
    }
}
