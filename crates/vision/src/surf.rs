//! SURF: Speeded-Up Robust Features (Bay et al., 2006).
//!
//! The paper's image-matching service (Figure 5) splits SURF into the two
//! Sirius Suite kernels this module exposes:
//!
//! * **Feature Extraction (FE)** — [`detect`]: build the box-filter Hessian
//!   scale space over an integral image, threshold the responses and keep
//!   3×3×3 local maxima as keypoints.
//! * **Feature Description (FD)** — [`describe`]: assign each keypoint a
//!   dominant Haar-wavelet orientation, then accumulate oriented Haar
//!   responses over a 4×4 grid of subregions into a 64-dimensional
//!   descriptor.

use std::f32::consts::PI;

use crate::image::GrayImage;
use crate::integral::IntegralImage;
use sirius_par::ExecPolicy;

/// Descriptor dimensionality (4 × 4 subregions × 4 statistics).
pub const DESCRIPTOR_DIM: usize = 64;

/// A detected interest point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyPoint {
    /// X coordinate in pixels.
    pub x: f32,
    /// Y coordinate in pixels.
    pub y: f32,
    /// Characteristic scale (1.2 × filter_size / 9).
    pub scale: f32,
    /// Hessian determinant response.
    pub response: f32,
    /// Sign of the Laplacian (trace), used for fast match rejection.
    pub laplacian_positive: bool,
    /// Dominant orientation in radians (set by [`describe`]).
    pub orientation: f32,
}

/// A 64-dimensional SURF descriptor, L2-normalized.
#[derive(Debug, Clone, PartialEq)]
pub struct Descriptor(pub Vec<f32>);

impl Descriptor {
    /// Squared Euclidean distance to another descriptor.
    pub fn distance_sq(&self, other: &Descriptor) -> f32 {
        self.0
            .iter()
            .zip(&other.0)
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }
}

/// Detector/descriptor configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurfConfig {
    /// Number of scale-space octaves (1..=4).
    pub octaves: usize,
    /// Hessian response threshold; lower finds more keypoints.
    pub threshold: f32,
    /// Base sampling step in pixels (doubled each octave).
    pub init_step: usize,
    /// If `true`, skip orientation assignment (upright U-SURF).
    pub upright: bool,
    /// Runtime execution policy. Detection tiles the response grid by row
    /// and description fans out over keypoints; both are bit-identical to
    /// the serial path at any thread count and strategy.
    pub exec: ExecPolicy,
}

impl Default for SurfConfig {
    fn default() -> Self {
        Self {
            octaves: 3,
            threshold: 2e-4,
            init_step: 2,
            upright: false,
            exec: ExecPolicy::serial(),
        }
    }
}

/// Filter sizes per octave, as in the original SURF scale space.
const OCTAVE_FILTERS: [[usize; 4]; 4] = [
    [9, 15, 21, 27],
    [15, 27, 39, 51],
    [27, 51, 75, 99],
    [51, 99, 147, 195],
];

/// One layer of Hessian responses at a fixed filter size.
struct ResponseLayer {
    /// Filter size in pixels.
    filter: usize,
    /// Sampling step in pixels.
    step: usize,
    /// Grid dimensions.
    w: usize,
    h: usize,
    /// det(H) responses.
    responses: Vec<f32>,
    /// Laplacian signs.
    laplacian: Vec<bool>,
}

impl ResponseLayer {
    fn build(ii: &IntegralImage, filter: usize, step: usize, exec: ExecPolicy) -> Self {
        let w = ii.width() / step;
        let h = ii.height() / step;
        let lobe = filter as isize / 3;
        let border = (filter as isize - 1) / 2 + 1;
        let inv_area = 1.0 / (filter * filter) as f64;
        // Each grid row is an independent tile; the rows are stitched back
        // in index order so the layer is identical at any thread count.
        let rows: Vec<(Vec<f32>, Vec<bool>)> = exec.map_collect(h, |gy| {
            let mut responses = vec![0.0f32; w];
            let mut laplacian = vec![false; w];
            for gx in 0..w {
                let c = (gx * step) as isize; // column (x)
                let r = (gy * step) as isize; // row (y)
                                              // Box sums; box(r, c, rows, cols) over [c, c+cols) x [r, r+rows).
                let bx = |r0: isize, c0: isize, rows: isize, cols: isize| -> f64 {
                    ii.box_sum(c0, r0, c0 + cols, r0 + rows)
                };
                let dxx = bx(r - lobe + 1, c - border, 2 * lobe - 1, filter as isize)
                    - 3.0 * bx(r - lobe + 1, c - lobe / 2, 2 * lobe - 1, lobe);
                let dyy = bx(r - border, c - lobe + 1, filter as isize, 2 * lobe - 1)
                    - 3.0 * bx(r - lobe / 2, c - lobe + 1, lobe, 2 * lobe - 1);
                let dxy = bx(r - lobe, c + 1, lobe, lobe) + bx(r + 1, c - lobe, lobe, lobe)
                    - bx(r - lobe, c - lobe, lobe, lobe)
                    - bx(r + 1, c + 1, lobe, lobe);
                let dxx = dxx * inv_area;
                let dyy = dyy * inv_area;
                let dxy = dxy * inv_area;
                let det = (dxx * dyy - 0.81 * dxy * dxy) as f32;
                responses[gx] = det;
                laplacian[gx] = dxx + dyy >= 0.0;
            }
            (responses, laplacian)
        });
        let mut responses = Vec::with_capacity(w * h);
        let mut laplacian = Vec::with_capacity(w * h);
        for (r, l) in rows {
            responses.extend_from_slice(&r);
            laplacian.extend_from_slice(&l);
        }
        Self {
            filter,
            step,
            w,
            h,
            responses,
            laplacian,
        }
    }

    #[inline]
    fn response_at(&self, x_px: usize, y_px: usize) -> f32 {
        let gx = (x_px / self.step).min(self.w.saturating_sub(1));
        let gy = (y_px / self.step).min(self.h.saturating_sub(1));
        self.responses[gy * self.w + gx]
    }

    #[inline]
    fn laplacian_at(&self, x_px: usize, y_px: usize) -> bool {
        let gx = (x_px / self.step).min(self.w.saturating_sub(1));
        let gy = (y_px / self.step).min(self.h.saturating_sub(1));
        self.laplacian[gy * self.w + gx]
    }
}

/// Feature Extraction: detects interest points in `img`.
///
/// This is the Sirius Suite **FE** kernel.
pub fn detect(img: &GrayImage, config: &SurfConfig) -> Vec<KeyPoint> {
    let ii = IntegralImage::new(img);
    detect_on_integral(&ii, config)
}

/// Like [`detect`], but reuses a prebuilt integral image.
pub fn detect_on_integral(ii: &IntegralImage, config: &SurfConfig) -> Vec<KeyPoint> {
    let octaves = config.octaves.clamp(1, 4);
    let mut keypoints = Vec::new();
    for o in 0..octaves {
        let step = config.init_step.max(1) << o;
        let layers: Vec<ResponseLayer> = OCTAVE_FILTERS[o]
            .iter()
            .map(|&f| ResponseLayer::build(ii, f, step, config.exec))
            .collect();
        // Non-maximum suppression over (bottom, middle, top) triples.
        for m in 1..3 {
            let (bottom, middle, top) = (&layers[m - 1], &layers[m], &layers[m + 1]);
            nms_layer(ii, bottom, middle, top, step, config, &mut keypoints);
        }
    }
    keypoints
}

fn nms_layer(
    ii: &IntegralImage,
    bottom: &ResponseLayer,
    middle: &ResponseLayer,
    top: &ResponseLayer,
    step: usize,
    config: &SurfConfig,
    out: &mut Vec<KeyPoint>,
) {
    let threshold = config.threshold;
    // The border excludes positions where the top filter hangs off the image.
    let border = (top.filter / 2 + 1).div_ceil(step) * step;
    let (w_px, h_px) = (ii.width(), ii.height());
    if w_px <= 2 * border || h_px <= 2 * border {
        return;
    }
    // Scan rows of the suppression grid in parallel; flattening the per-row
    // hits in index order preserves the serial (row-major) keypoint order.
    let rows: Vec<usize> = (border..h_px - border).step_by(step).collect();
    let per_row: Vec<Vec<KeyPoint>> = config.exec.map_collect(rows.len(), |i| {
        let y = rows[i];
        let mut hits = Vec::new();
        let mut x = border;
        while x < w_px - border {
            let v = middle.response_at(x, y);
            if v > threshold && is_local_max(v, x, y, step, bottom, middle, top) {
                hits.push(KeyPoint {
                    x: x as f32,
                    y: y as f32,
                    scale: 1.2 * middle.filter as f32 / 9.0,
                    response: v,
                    laplacian_positive: middle.laplacian_at(x, y),
                    orientation: 0.0,
                });
            }
            x += step;
        }
        hits
    });
    out.extend(per_row.into_iter().flatten());
}

fn is_local_max(
    v: f32,
    x: usize,
    y: usize,
    step: usize,
    bottom: &ResponseLayer,
    middle: &ResponseLayer,
    top: &ResponseLayer,
) -> bool {
    for dy in -1isize..=1 {
        for dx in -1isize..=1 {
            let nx = (x as isize + dx * step as isize).max(0) as usize;
            let ny = (y as isize + dy * step as isize).max(0) as usize;
            if bottom.response_at(nx, ny) >= v || top.response_at(nx, ny) >= v {
                return false;
            }
            if (dx != 0 || dy != 0) && middle.response_at(nx, ny) >= v {
                return false;
            }
        }
    }
    true
}

/// Haar wavelet response in x at `(x, y)` with filter side `s` pixels.
#[inline]
fn haar_x(ii: &IntegralImage, x: isize, y: isize, s: isize) -> f32 {
    let half = s / 2;
    (ii.box_sum(x, y - half, x + half, y + half) - ii.box_sum(x - half, y - half, x, y + half))
        as f32
}

/// Haar wavelet response in y at `(x, y)` with filter side `s` pixels.
#[inline]
fn haar_y(ii: &IntegralImage, x: isize, y: isize, s: isize) -> f32 {
    let half = s / 2;
    (ii.box_sum(x - half, y, x + half, y + half) - ii.box_sum(x - half, y - half, x + half, y))
        as f32
}

fn gaussian(x: f32, y: f32, sigma: f32) -> f32 {
    (-(x * x + y * y) / (2.0 * sigma * sigma)).exp() / (2.0 * PI * sigma * sigma)
}

/// Assigns the dominant orientation to a keypoint (the first FD stage).
pub fn assign_orientation(ii: &IntegralImage, kp: &KeyPoint) -> f32 {
    let s = kp.scale.round().max(1.0) as isize;
    let (xc, yc) = (kp.x.round() as isize, kp.y.round() as isize);
    let mut angles = Vec::with_capacity(113);
    for j in -6isize..=6 {
        for i in -6isize..=6 {
            if i * i + j * j >= 36 {
                continue;
            }
            let g = gaussian(i as f32, j as f32, 2.5);
            let rx = g * haar_x(ii, xc + i * s, yc + j * s, 4 * s);
            let ry = g * haar_y(ii, xc + i * s, yc + j * s, 4 * s);
            angles.push((ry.atan2(rx), rx, ry));
        }
    }
    // Sliding window of pi/3 over the angle circle.
    let mut best = (0.0f32, 0.0f32, 0.0f32); // (len^2, sum_x, sum_y)
    let mut ang = -PI;
    while ang < PI {
        let lo = ang;
        let hi = ang + PI / 3.0;
        let (mut sx, mut sy) = (0.0f32, 0.0f32);
        for &(a, rx, ry) in &angles {
            let in_window = if hi <= PI {
                a >= lo && a < hi
            } else {
                a >= lo || a < hi - 2.0 * PI
            };
            if in_window {
                sx += rx;
                sy += ry;
            }
        }
        let len = sx * sx + sy * sy;
        if len > best.0 {
            best = (len, sx, sy);
        }
        ang += 0.15;
    }
    best.2.atan2(best.1)
}

/// Computes the 64-d descriptor for an oriented keypoint.
pub fn describe_keypoint(ii: &IntegralImage, kp: &KeyPoint) -> Descriptor {
    let s = kp.scale.max(1.0);
    let (cos_t, sin_t) = (kp.orientation.cos(), kp.orientation.sin());
    let mut v = Vec::with_capacity(DESCRIPTOR_DIM);
    // 4x4 subregions, each sampled 5x5 at spacing s, window spans [-10s, 10s).
    for sub_y in 0..4 {
        for sub_x in 0..4 {
            let (mut dx_sum, mut dy_sum, mut adx_sum, mut ady_sum) = (0.0f32, 0.0, 0.0, 0.0);
            for sample_y in 0..5 {
                for sample_x in 0..5 {
                    // Sample offset in keypoint-aligned coordinates, units of s.
                    let u = (sub_x as f32 - 2.0) * 5.0 + sample_x as f32 + 0.5;
                    let w = (sub_y as f32 - 2.0) * 5.0 + sample_y as f32 + 0.5;
                    let gx = kp.x + (u * cos_t - w * sin_t) * s;
                    let gy = kp.y + (u * sin_t + w * cos_t) * s;
                    let g = gaussian(u, w, 3.3);
                    let rx = haar_x(
                        ii,
                        gx.round() as isize,
                        gy.round() as isize,
                        (2.0 * s) as isize,
                    );
                    let ry = haar_y(
                        ii,
                        gx.round() as isize,
                        gy.round() as isize,
                        (2.0 * s) as isize,
                    );
                    // Rotate responses into the keypoint frame.
                    let dx = g * (rx * cos_t + ry * sin_t);
                    let dy = g * (-rx * sin_t + ry * cos_t);
                    dx_sum += dx;
                    dy_sum += dy;
                    adx_sum += dx.abs();
                    ady_sum += dy.abs();
                }
            }
            v.extend_from_slice(&[dx_sum, dy_sum, adx_sum, ady_sum]);
        }
    }
    // L2 normalization for contrast invariance.
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 1e-12 {
        for x in &mut v {
            *x /= norm;
        }
    }
    Descriptor(v)
}

/// Feature Description: orients and describes all keypoints.
///
/// This is the Sirius Suite **FD** kernel. Returns the keypoints with their
/// orientations filled in, and their descriptors.
pub fn describe(
    img: &GrayImage,
    keypoints: &[KeyPoint],
    config: &SurfConfig,
) -> (Vec<KeyPoint>, Vec<Descriptor>) {
    let ii = IntegralImage::new(img);
    describe_on_integral(&ii, keypoints, config)
}

/// Like [`describe`], but reuses a prebuilt integral image.
pub fn describe_on_integral(
    ii: &IntegralImage,
    keypoints: &[KeyPoint],
    config: &SurfConfig,
) -> (Vec<KeyPoint>, Vec<Descriptor>) {
    // Each keypoint is oriented and described independently.
    let described: Vec<(KeyPoint, Descriptor)> = config.exec.map_collect(keypoints.len(), |i| {
        let mut kp = keypoints[i];
        kp.orientation = if config.upright {
            0.0
        } else {
            assign_orientation(ii, &kp)
        };
        let desc = describe_keypoint(ii, &kp);
        (kp, desc)
    });
    described.into_iter().unzip()
}

/// Full pipeline: detect + describe.
pub fn extract(img: &GrayImage, config: &SurfConfig) -> (Vec<KeyPoint>, Vec<Descriptor>) {
    let ii = IntegralImage::new(img);
    let kps = detect_on_integral(&ii, config);
    describe_on_integral(&ii, &kps, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    fn blob_image() -> GrayImage {
        // A bright Gaussian blob on a dark background.
        let mut img = GrayImage::new(128, 128);
        for y in 0..128 {
            for x in 0..128 {
                let dx = x as f32 - 64.0;
                let dy = y as f32 - 64.0;
                img.set(x, y, (-(dx * dx + dy * dy) / 128.0).exp());
            }
        }
        img
    }

    #[test]
    fn detects_blob_center() {
        let img = blob_image();
        let kps = detect(&img, &SurfConfig::default());
        assert!(!kps.is_empty(), "no keypoints found");
        let best = kps
            .iter()
            .max_by(|a, b| a.response.total_cmp(&b.response))
            .expect("non-empty");
        assert!(
            (best.x - 64.0).abs() <= 6.0 && (best.y - 64.0).abs() <= 6.0,
            "best keypoint at ({}, {})",
            best.x,
            best.y
        );
        let _ = best.laplacian_positive; // field is populated
    }

    #[test]
    fn flat_image_has_no_keypoints() {
        let img = GrayImage::from_data(96, 96, vec![0.5; 96 * 96]);
        let kps = detect(&img, &SurfConfig::default());
        assert!(
            kps.is_empty(),
            "found {} keypoints in flat image",
            kps.len()
        );
    }

    #[test]
    fn descriptors_are_normalized() {
        let img = synth::generate_scene(11, 160, 160);
        let (kps, descs) = extract(&img, &SurfConfig::default());
        assert!(!kps.is_empty());
        for d in &descs {
            assert_eq!(d.0.len(), DESCRIPTOR_DIM);
            let norm: f32 = d.0.iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-4, "norm {norm}");
        }
    }

    #[test]
    fn descriptor_is_contrast_invariant() {
        let img = blob_image();
        let dimmed = GrayImage::from_data(
            img.width(),
            img.height(),
            img.data().iter().map(|v| v * 0.4).collect(),
        );
        let cfg = SurfConfig::default();
        let kps = detect(&img, &cfg);
        let (_, d1) = describe(&img, &kps, &cfg);
        let (_, d2) = describe(&dimmed, &kps, &cfg);
        let dist = d1[0].distance_sq(&d2[0]);
        assert!(dist < 1e-4, "contrast changed descriptor by {dist}");
    }

    #[test]
    fn matched_keypoints_have_similar_descriptors_after_shift() {
        // Translate the scene; descriptors at translated positions must be
        // much closer than random pairs.
        let img = synth::generate_scene(3, 200, 200);
        let shifted = img.crop_clamped(8, 8, 184, 184);
        let cfg = SurfConfig::default();
        let (kps1, d1) = extract(&img, &cfg);
        let (kps2, d2) = extract(&shifted, &cfg);
        assert!(kps1.len() > 3 && kps2.len() > 3);
        // For each keypoint in `shifted`, find the original keypoint at
        // (x+8, y+8) if any, and compare descriptor distances.
        let mut matched = 0;
        let mut close = 0;
        for (k2, desc2) in kps2.iter().zip(&d2) {
            if let Some(i1) = kps1.iter().position(|k1| {
                (k1.x - (k2.x + 8.0)).abs() <= 2.0 && (k1.y - (k2.y + 8.0)).abs() <= 2.0
            }) {
                matched += 1;
                let d_match = d1[i1].distance_sq(desc2);
                // Compare to median distance against all descriptors.
                let mut others: Vec<f32> = d1.iter().map(|d| d.distance_sq(desc2)).collect();
                others.sort_by(f32::total_cmp);
                let median = others[others.len() / 2];
                if d_match < median * 0.5 {
                    close += 1;
                }
            }
        }
        assert!(matched >= 3, "only {matched} spatial correspondences");
        assert!(
            close * 2 >= matched,
            "only {close}/{matched} correspondences were descriptor-close"
        );
    }

    #[test]
    fn upright_mode_skips_orientation() {
        let img = blob_image();
        let cfg = SurfConfig {
            upright: true,
            ..SurfConfig::default()
        };
        let kps = detect(&img, &cfg);
        let (oriented, _) = describe(&img, &kps, &cfg);
        assert!(oriented.iter().all(|k| k.orientation == 0.0));
    }
}

#[cfg(test)]
mod geometry_tests {
    use super::*;
    use crate::synth::{self, ViewConfig};

    #[test]
    fn orientation_tracks_image_rotation() {
        // Rotate the scene; the dominant orientation of corresponding
        // keypoints should shift by roughly the rotation angle.
        let scene = synth::generate_scene(17, 192, 192);
        let angle = 0.35f32;
        let rotated = synth::render_view(
            &scene,
            &ViewConfig {
                rotation: angle,
                noise: 0.0,
                ..ViewConfig::default()
            },
            0,
        );
        let cfg = SurfConfig::default();
        let (kps1, _) = extract(&scene, &cfg);
        let (kps2, _) = extract(&rotated, &cfg);
        assert!(!kps1.is_empty() && !kps2.is_empty());
        // Match keypoints by rotated position around the image center.
        let (cx, cy) = (96.0f32, 96.0f32);
        let mut diffs = Vec::new();
        for k2 in &kps2 {
            // Inverse-rotate k2's position into scene coordinates.
            let dx = k2.x - cx;
            let dy = k2.y - cy;
            let sx = dx * angle.cos() + dy * angle.sin() + cx;
            let sy = -dx * angle.sin() + dy * angle.cos() + cy;
            if let Some(k1) = kps1.iter().find(|k| {
                (k.x - sx).abs() <= 3.0
                    && (k.y - sy).abs() <= 3.0
                    && (k.scale - k2.scale).abs() < 0.5
            }) {
                let mut d = k2.orientation - k1.orientation - angle;
                while d > std::f32::consts::PI {
                    d -= 2.0 * std::f32::consts::PI;
                }
                while d < -std::f32::consts::PI {
                    d += 2.0 * std::f32::consts::PI;
                }
                diffs.push(d.abs());
            }
        }
        assert!(diffs.len() >= 3, "only {} correspondences", diffs.len());
        diffs.sort_by(f32::total_cmp);
        let median = diffs[diffs.len() / 2];
        assert!(median < 0.35, "median orientation error {median} rad");
    }

    #[test]
    fn blob_size_drives_detected_scale() {
        // A larger Gaussian blob should fire at a larger characteristic
        // scale.
        let blob = |sigma: f32| -> GrayImage {
            let mut img = GrayImage::new(192, 192);
            for y in 0..192 {
                for x in 0..192 {
                    let dx = x as f32 - 96.0;
                    let dy = y as f32 - 96.0;
                    img.set(x, y, (-(dx * dx + dy * dy) / (2.0 * sigma * sigma)).exp());
                }
            }
            img
        };
        let cfg = SurfConfig::default();
        let scale_of = |img: &GrayImage| -> f32 {
            detect(img, &cfg)
                .iter()
                .max_by(|a, b| a.response.total_cmp(&b.response))
                .map(|k| k.scale)
                .expect("keypoint found")
        };
        let small = scale_of(&blob(5.0));
        let large = scale_of(&blob(14.0));
        assert!(
            large > small,
            "blob sigma 14 scale {large} should exceed sigma 5 scale {small}"
        );
    }

    #[test]
    fn descriptor_distance_separates_different_patches() {
        let scene = synth::generate_scene(19, 192, 192);
        let cfg = SurfConfig::default();
        let (kps, descs) = extract(&scene, &cfg);
        assert!(kps.len() >= 4);
        // Distance to self is zero; distances between distinct keypoints
        // are positive.
        assert_eq!(descs[0].distance_sq(&descs[0]), 0.0);
        let cross = descs[0].distance_sq(&descs[1]);
        assert!(cross > 0.0);
    }
}

#[cfg(test)]
mod exec_policy_tests {
    use super::*;
    use crate::synth;
    use sirius_par::Strategy;

    /// Detection and description must be bit-identical to the serial path
    /// for every thread count and strategy: the tiles only partition the
    /// work, never change the arithmetic or the output order.
    #[test]
    fn extraction_is_policy_invariant() {
        let img = synth::generate_scene(31, 160, 120);
        let base = extract(&img, &SurfConfig::default());
        for threads in [1, 2, 3, 8] {
            for strategy in Strategy::ALL {
                let cfg = SurfConfig {
                    exec: ExecPolicy::new(threads, strategy),
                    ..SurfConfig::default()
                };
                let (kps, descs) = extract(&img, &cfg);
                assert_eq!(
                    kps, base.0,
                    "keypoints: threads {threads} strategy {strategy}"
                );
                assert_eq!(
                    descs, base.1,
                    "descriptors: threads {threads} strategy {strategy}"
                );
            }
        }
    }
}

#[cfg(test)]
mod descriptor_property_tests {
    use super::*;
    use crate::synth;

    /// Descriptors are unit-norm (or zero for featureless patches) and
    /// their pairwise distance is bounded by 4 (both unit vectors).
    #[test]
    fn descriptor_norms_and_distances_are_bounded() {
        for seed in [0u64, 7, 23, 41, 55, 68, 83, 99] {
            let img = synth::generate_scene(seed, 128, 128);
            let (_, descs) = extract(&img, &SurfConfig::default());
            for d in &descs {
                let norm: f32 = d.0.iter().map(|x| x * x).sum();
                assert!(norm <= 1.0 + 1e-3, "seed {seed}: norm^2 {norm}");
            }
            if descs.len() >= 2 {
                let dist = descs[0].distance_sq(&descs[1]);
                assert!((0.0..=4.0 + 1e-3).contains(&dist), "seed {seed}");
            }
        }
    }
}
