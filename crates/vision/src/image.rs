//! Grayscale image representation and sampling.

/// A row-major grayscale image with `f32` intensities (nominally 0..1).
#[derive(Debug, Clone, PartialEq)]
pub struct GrayImage {
    width: usize,
    height: usize,
    data: Vec<f32>,
}

impl GrayImage {
    /// Creates a black image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        Self {
            width,
            height,
            data: vec![0.0; width * height],
        }
    }

    /// Creates an image from raw row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height` or a dimension is zero.
    pub fn from_data(width: usize, height: usize, data: Vec<f32>) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        assert_eq!(data.len(), width * height, "data length mismatch");
        Self {
            width,
            height,
            data,
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Raw row-major pixel data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Pixel value at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> f32 {
        self.data[y * self.width + x]
    }

    /// Pixel value with edge clamping for out-of-range coordinates.
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize) -> f32 {
        let cx = x.clamp(0, self.width as isize - 1) as usize;
        let cy = y.clamp(0, self.height as isize - 1) as usize;
        self.data[cy * self.width + cx]
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: f32) {
        self.data[y * self.width + x] = v;
    }

    /// Bilinear sample at fractional coordinates (edge-clamped).
    pub fn sample_bilinear(&self, x: f32, y: f32) -> f32 {
        let x0 = x.floor();
        let y0 = y.floor();
        let fx = x - x0;
        let fy = y - y0;
        let (x0, y0) = (x0 as isize, y0 as isize);
        let v00 = self.get_clamped(x0, y0);
        let v10 = self.get_clamped(x0 + 1, y0);
        let v01 = self.get_clamped(x0, y0 + 1);
        let v11 = self.get_clamped(x0 + 1, y0 + 1);
        v00 * (1.0 - fx) * (1.0 - fy)
            + v10 * fx * (1.0 - fy)
            + v01 * (1.0 - fx) * fy
            + v11 * fx * fy
    }

    /// Extracts a tile `[x0, x0+w) x [y0, y0+h)`, edge-clamped.
    pub fn crop_clamped(&self, x0: isize, y0: isize, w: usize, h: usize) -> GrayImage {
        let mut out = GrayImage::new(w, h);
        for y in 0..h {
            for x in 0..w {
                out.set(x, y, self.get_clamped(x0 + x as isize, y0 + y as isize));
            }
        }
        out
    }

    /// Splits the image into tiles of roughly `tile_w x tile_h` (the last
    /// row/column of tiles absorbs the remainder). Used by the multicore FE
    /// port, which assigns tiles to threads (paper Section 4.3.1).
    ///
    /// Returns `(x_offset, y_offset, tile)` triples.
    pub fn tiles(&self, tile_w: usize, tile_h: usize) -> Vec<(usize, usize, GrayImage)> {
        let tile_w = tile_w.max(1).min(self.width);
        let tile_h = tile_h.max(1).min(self.height);
        let nx = self.width / tile_w;
        let ny = self.height / tile_h;
        let mut out = Vec::with_capacity(nx.max(1) * ny.max(1));
        for ty in 0..ny.max(1) {
            for tx in 0..nx.max(1) {
                let x0 = tx * tile_w;
                let y0 = ty * tile_h;
                let w = if tx + 1 == nx.max(1) {
                    self.width - x0
                } else {
                    tile_w
                };
                let h = if ty + 1 == ny.max(1) {
                    self.height - y0
                } else {
                    tile_h
                };
                out.push((x0, y0, self.crop_clamped(x0 as isize, y0 as isize, w, h)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_round_trip() {
        let mut img = GrayImage::new(4, 3);
        img.set(2, 1, 0.5);
        assert_eq!(img.get(2, 1), 0.5);
        assert_eq!(img.get(0, 0), 0.0);
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 3);
    }

    #[test]
    fn clamped_access() {
        let mut img = GrayImage::new(2, 2);
        img.set(0, 0, 1.0);
        img.set(1, 1, 2.0);
        assert_eq!(img.get_clamped(-5, -5), 1.0);
        assert_eq!(img.get_clamped(10, 10), 2.0);
    }

    #[test]
    fn bilinear_interpolates() {
        let img = GrayImage::from_data(2, 1, vec![0.0, 1.0]);
        assert!((img.sample_bilinear(0.5, 0.0) - 0.5).abs() < 1e-6);
        assert!((img.sample_bilinear(0.0, 0.0) - 0.0).abs() < 1e-6);
        assert!((img.sample_bilinear(1.0, 0.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn tiles_cover_image_exactly() {
        let img = GrayImage::from_data(7, 5, (0..35).map(|i| i as f32).collect());
        let tiles = img.tiles(3, 2);
        let total: usize = tiles.iter().map(|(_, _, t)| t.width() * t.height()).sum();
        assert_eq!(total, 35);
        // Every pixel must be recoverable from its tile.
        for (x0, y0, t) in &tiles {
            for y in 0..t.height() {
                for x in 0..t.width() {
                    assert_eq!(t.get(x, y), img.get(x0 + x, y0 + y));
                }
            }
        }
    }

    #[test]
    fn tiles_larger_than_image() {
        let img = GrayImage::new(4, 4);
        let tiles = img.tiles(100, 100);
        assert_eq!(tiles.len(), 1);
        assert_eq!(tiles[0].2.width(), 4);
    }

    #[test]
    #[should_panic(expected = "data length mismatch")]
    fn bad_data_length_panics() {
        let _ = GrayImage::from_data(3, 3, vec![0.0; 8]);
    }
}
