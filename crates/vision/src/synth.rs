//! Procedural image generation.
//!
//! The paper's image database is the Stanford Mobile Visual Search data set,
//! which we cannot ship. We generate textured scenes instead — random
//! Gaussian blobs, rectangles and intensity gradients — and produce *query
//! views* by applying an affine warp (scale, rotation, translation) plus
//! noise. A query view must match its source image in the database, which
//! exercises the same SURF + ANN pipeline on measurable ground truth.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::image::GrayImage;

/// Generates a textured scene of the given size, deterministically per seed.
pub fn generate_scene(seed: u64, width: usize, height: usize) -> GrayImage {
    let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9));
    let mut img = GrayImage::new(width, height);
    // Base gradient.
    let gx = rng.gen_range(-0.3..0.3);
    let gy = rng.gen_range(-0.3..0.3);
    let base = rng.gen_range(0.3..0.6);
    for y in 0..height {
        for x in 0..width {
            let v = base + gx * x as f32 / width as f32 + gy * y as f32 / height as f32;
            img.set(x, y, v);
        }
    }
    // Gaussian blobs.
    let blobs = 10 + (seed % 6) as usize;
    for _ in 0..blobs {
        let cx = rng.gen_range(0.0..width as f32);
        let cy = rng.gen_range(0.0..height as f32);
        let sigma = rng.gen_range(4.0..16.0f32);
        let amp = rng.gen_range(-0.5..0.5f32);
        let reach = (3.0 * sigma) as isize;
        let x0 = (cx as isize - reach).max(0) as usize;
        let x1 = ((cx as isize + reach).max(0) as usize).min(width);
        let y0 = (cy as isize - reach).max(0) as usize;
        let y1 = ((cy as isize + reach).max(0) as usize).min(height);
        for y in y0..y1 {
            for x in x0..x1 {
                let dx = x as f32 - cx;
                let dy = y as f32 - cy;
                let g = (-(dx * dx + dy * dy) / (2.0 * sigma * sigma)).exp();
                let v = img.get(x, y) + amp * g;
                img.set(x, y, v);
            }
        }
    }
    // Rectangles with sharp edges (strong corners for the detector).
    for _ in 0..6 {
        let rw = rng.gen_range(8..width / 3);
        let rh = rng.gen_range(8..height / 3);
        let rx = rng.gen_range(0..width - rw);
        let ry = rng.gen_range(0..height - rh);
        let amp = rng.gen_range(-0.35..0.35f32);
        for y in ry..ry + rh {
            for x in rx..rx + rw {
                let v = img.get(x, y) + amp;
                img.set(x, y, v);
            }
        }
    }
    // Clamp to [0, 1].
    let data: Vec<f32> = img.data().iter().map(|v| v.clamp(0.0, 1.0)).collect();
    GrayImage::from_data(width, height, data)
}

/// Parameters of an affine query view.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViewConfig {
    /// Uniform scale factor applied to the scene.
    pub scale: f32,
    /// Rotation in radians.
    pub rotation: f32,
    /// Translation in pixels (applied after rotation/scale).
    pub translate: (f32, f32),
    /// Additive white-noise amplitude.
    pub noise: f32,
}

impl Default for ViewConfig {
    fn default() -> Self {
        Self {
            scale: 1.0,
            rotation: 0.0,
            translate: (0.0, 0.0),
            noise: 0.01,
        }
    }
}

/// Renders a query view of `scene` under the given affine transform.
///
/// Output has the same dimensions as the scene; pixels mapping outside the
/// source are edge-clamped (as a camera crop would be).
pub fn render_view(scene: &GrayImage, config: &ViewConfig, seed: u64) -> GrayImage {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xabcd_ef01);
    let (w, h) = (scene.width(), scene.height());
    let (cx, cy) = (w as f32 / 2.0, h as f32 / 2.0);
    let (cos_t, sin_t) = (config.rotation.cos(), config.rotation.sin());
    let inv_scale = 1.0 / config.scale.max(1e-6);
    let mut out = GrayImage::new(w, h);
    for y in 0..h {
        for x in 0..w {
            // Inverse mapping: destination -> source.
            let dx = x as f32 - cx - config.translate.0;
            let dy = y as f32 - cy - config.translate.1;
            let sx = (dx * cos_t + dy * sin_t) * inv_scale + cx;
            let sy = (-dx * sin_t + dy * cos_t) * inv_scale + cy;
            let noise = rng.gen_range(-1.0f32..1.0) * config.noise;
            out.set(
                x,
                y,
                (scene.sample_bilinear(sx, sy) + noise).clamp(0.0, 1.0),
            );
        }
    }
    out
}

/// A random moderate view (scale 0.85–1.2, rotation ±0.2 rad, small shift).
pub fn random_view(scene: &GrayImage, seed: u64) -> GrayImage {
    let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(7));
    let config = ViewConfig {
        scale: rng.gen_range(0.85..1.2),
        rotation: rng.gen_range(-0.2..0.2),
        translate: (rng.gen_range(-8.0..8.0), rng.gen_range(-8.0..8.0)),
        noise: 0.015,
    };
    render_view(scene, &config, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenes_are_deterministic_and_distinct() {
        let a = generate_scene(1, 64, 64);
        let b = generate_scene(1, 64, 64);
        let c = generate_scene(2, 64, 64);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn scene_values_in_unit_range() {
        let img = generate_scene(5, 80, 60);
        assert!(img.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn identity_view_approximates_scene() {
        let scene = generate_scene(7, 64, 64);
        let view = render_view(
            &scene,
            &ViewConfig {
                noise: 0.0,
                ..ViewConfig::default()
            },
            0,
        );
        let mse: f32 = scene
            .data()
            .iter()
            .zip(view.data())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            / (64.0 * 64.0);
        assert!(mse < 1e-6, "identity view mse {mse}");
    }

    #[test]
    fn rotation_changes_pixels() {
        let scene = generate_scene(9, 64, 64);
        let rotated = render_view(
            &scene,
            &ViewConfig {
                rotation: 0.3,
                noise: 0.0,
                ..ViewConfig::default()
            },
            0,
        );
        assert_ne!(scene, rotated);
    }

    #[test]
    fn random_views_differ_per_seed() {
        let scene = generate_scene(11, 64, 64);
        assert_ne!(random_view(&scene, 1), random_view(&scene, 2));
    }
}
