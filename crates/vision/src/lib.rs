//! # sirius-vision
//!
//! The image-matching (IMM) substrate of the Sirius reproduction
//! (Hauswald et al., ASPLOS 2015): a from-scratch SURF pipeline over
//! integral images, an approximate-nearest-neighbour matcher, and a
//! procedurally generated image database standing in for the Stanford
//! Mobile Visual Search data set (see DESIGN.md for the substitution).
//!
//! * [`image`] — grayscale images, bilinear sampling, tiling (for the
//!   multicore FE port of paper Section 4.3.1).
//! * [`integral`] — summed-area tables.
//! * [`surf`] — the Sirius Suite **FE** (detector) and **FD** (descriptor)
//!   kernels.
//! * [`ann`] — k-d tree with bounded best-bin-first search.
//! * [`db`] — the image database + matching service (paper Figure 5).
//! * [`synth`] — procedural scenes and affine query views.
//!
//! # Example
//!
//! ```
//! use sirius_vision::{db::{ImageDatabase, ImageId, MatchConfig}, synth};
//!
//! let scenes: Vec<_> = (0..3).map(|s| synth::generate_scene(s, 160, 160)).collect();
//! let db = ImageDatabase::build(scenes.iter(), MatchConfig::default());
//! let query = synth::random_view(&scenes[1], 99);
//! assert_eq!(db.match_image(&query).best, Some(ImageId(1)));
//! ```

#![warn(missing_docs)]
// Numeric kernels index parallel arrays; indexed loops are the clearer idiom.
#![allow(clippy::needless_range_loop)]

pub mod ann;
pub mod db;
pub mod image;
pub mod integral;
pub mod surf;
pub mod synth;
pub mod verify;

pub use db::{ImageDatabase, ImageId, MatchConfig, MatchResult, PartialMatch, QueryFeatures};
pub use image::GrayImage;
pub use surf::{Descriptor, KeyPoint, SurfConfig};
