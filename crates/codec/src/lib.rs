//! # sirius-codec
//!
//! A minimal, dependency-free binary codec for persisting trained Sirius
//! models (acoustic models, language models, CRF taggers). One of the
//! paper's three design objectives is *deployability* — "Sirius should be
//! deployable and fully functional on real systems" — and a deployable
//! assistant must ship trained models rather than retrain at startup.
//!
//! The format is little-endian, length-prefixed, and guarded by per-section
//! tags so decoding mismatched data fails fast instead of misinterpreting
//! bytes.
//!
//! # Example
//!
//! ```
//! use sirius_codec::{Decoder, Encoder};
//!
//! let mut enc = Encoder::new();
//! enc.u32(7).str("hello").f32_slice(&[1.0, 2.5]);
//! let bytes = enc.into_bytes();
//!
//! let mut dec = Decoder::new(&bytes);
//! assert_eq!(dec.u32()?, 7);
//! assert_eq!(dec.str()?, "hello");
//! assert_eq!(dec.f32_vec()?, vec![1.0, 2.5]);
//! dec.finish()?;
//! # Ok::<(), sirius_codec::DecodeError>(())
//! ```

#![warn(missing_docs)]

use std::fmt;

/// Error produced when decoding malformed or truncated bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// What went wrong.
    pub message: String,
    /// Byte offset at which decoding failed.
    pub offset: usize,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for DecodeError {}

/// Converts a container length to its `u32` wire form.
///
/// Every length-prefixed write routes through this check. Before it
/// existed, `s.len() as u32` silently truncated lengths ≥ 2³² — the prefix
/// would then disagree with the bytes that follow and every subsequent
/// field in the stream would be misread. A length the format cannot
/// represent is a programming error at the encode site, so it panics with
/// the offending length rather than corrupting the frame stream.
///
/// # Panics
///
/// If `len` exceeds `u32::MAX`, the documented encode contract.
fn wire_len(len: usize) -> u32 {
    u32::try_from(len).unwrap_or_else(|_| {
        panic!("sirius-codec: container length {len} exceeds the u32 length prefix")
    })
}

/// Append-only binary encoder.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the encoder, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a section tag (asserted on decode), for format safety.
    pub fn tag(&mut self, tag: &str) -> &mut Self {
        self.str(tag)
    }

    /// Writes a `u8`.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Writes a `bool` as one byte.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.u8(u8::from(v))
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes a little-endian `f32`.
    pub fn f32(&mut self, v: f32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes a little-endian `f64`.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Writes a length-prefixed UTF-8 string.
    ///
    /// # Panics
    ///
    /// If the string is longer than `u32::MAX` bytes (the length prefix
    /// cannot represent it; see [`wire_len`]).
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.u32(wire_len(s.len()));
        self.buf.extend_from_slice(s.as_bytes());
        self
    }

    /// Writes a length-prefixed raw byte blob (e.g. a nested encoding).
    ///
    /// # Panics
    ///
    /// If the blob is longer than `u32::MAX` bytes.
    pub fn bytes(&mut self, b: &[u8]) -> &mut Self {
        self.u32(wire_len(b.len()));
        self.buf.extend_from_slice(b);
        self
    }

    /// Writes a length-prefixed `f32` slice.
    ///
    /// # Panics
    ///
    /// If the slice holds more than `u32::MAX` elements.
    pub fn f32_slice(&mut self, xs: &[f32]) -> &mut Self {
        self.u32(wire_len(xs.len()));
        for &x in xs {
            self.f32(x);
        }
        self
    }

    /// Writes a length-prefixed `u32` slice.
    ///
    /// # Panics
    ///
    /// If the slice holds more than `u32::MAX` elements.
    pub fn u32_slice(&mut self, xs: &[u32]) -> &mut Self {
        self.u32(wire_len(xs.len()));
        for &x in xs {
            self.u32(x);
        }
        self
    }

    /// Writes a length-prefixed list of strings.
    ///
    /// # Panics
    ///
    /// If the list holds more than `u32::MAX` strings (or any string
    /// overflows its own prefix).
    pub fn str_slice<S: AsRef<str>>(&mut self, xs: &[S]) -> &mut Self {
        self.u32(wire_len(xs.len()));
        for x in xs {
            self.str(x.as_ref());
        }
        self
    }
}

/// Sequential binary decoder over a byte slice.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn err(&self, message: impl Into<String>) -> DecodeError {
        DecodeError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(self.err(format!(
                "needed {n} bytes, only {} remain",
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads and verifies a section tag.
    ///
    /// # Errors
    ///
    /// Fails if the stored tag differs from `expected`.
    pub fn tag(&mut self, expected: &str) -> Result<(), DecodeError> {
        let got = self.str()?;
        if got != expected {
            return Err(self.err(format!("expected section {expected:?}, found {got:?}")));
        }
        Ok(())
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `bool`.
    ///
    /// # Errors
    ///
    /// Fails on any byte other than 0 or 1.
    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(self.err(format!("invalid bool byte {b}"))),
        }
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads an `f32`.
    pub fn f32(&mut self) -> Result<f32, DecodeError> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads an `f64`.
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, DecodeError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| self.err(format!("invalid utf-8: {e}")))
    }

    /// Reads a length-prefixed raw byte blob.
    pub fn bytes_vec(&mut self) -> Result<Vec<u8>, DecodeError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a length-prefixed `f32` vector.
    pub fn f32_vec(&mut self) -> Result<Vec<f32>, DecodeError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(4) > self.buf.len() - self.pos {
            return Err(self.err(format!("f32 vector length {n} exceeds remaining bytes")));
        }
        (0..n).map(|_| self.f32()).collect()
    }

    /// Reads a length-prefixed `u32` vector.
    pub fn u32_vec(&mut self) -> Result<Vec<u32>, DecodeError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(4) > self.buf.len() - self.pos {
            return Err(self.err(format!("u32 vector length {n} exceeds remaining bytes")));
        }
        (0..n).map(|_| self.u32()).collect()
    }

    /// Reads a length-prefixed list of strings.
    pub fn str_vec(&mut self) -> Result<Vec<String>, DecodeError> {
        let n = self.u32()? as usize;
        // Allocation preflight, like `f32_vec`/`u32_vec`: each string costs
        // at least its own 4-byte length prefix, so a count the remaining
        // bytes cannot possibly back is rejected before `collect` reserves
        // `n` `String` slots. Without this, a 9-byte hostile frame claiming
        // 2^32 − 1 zero-length strings allocated ~96 GiB of `Vec<String>`
        // capacity before the bytes ran out.
        if n.saturating_mul(4) > self.buf.len() - self.pos {
            return Err(self.err(format!("string list length {n} exceeds remaining bytes")));
        }
        (0..n).map(|_| self.str()).collect()
    }

    /// Remaining undecoded bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts the input was fully consumed.
    ///
    /// # Errors
    ///
    /// Fails if trailing bytes remain.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.remaining() != 0 {
            return Err(self.err(format!("{} trailing bytes", self.remaining())));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic SplitMix64 generator so the property loops below are
    /// reproducible without an external fuzzing framework.
    struct Mix(u64);

    impl Mix {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        fn below(&mut self, bound: u64) -> u64 {
            self.next() % bound
        }
    }

    #[test]
    fn scalar_round_trips() {
        let mut e = Encoder::new();
        e.u8(9)
            .bool(true)
            .u32(123_456)
            .u64(u64::MAX)
            .f32(-1.5)
            .f64(std::f64::consts::PI);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.u8().unwrap(), 9);
        assert!(d.bool().unwrap());
        assert_eq!(d.u32().unwrap(), 123_456);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.f32().unwrap(), -1.5);
        assert_eq!(d.f64().unwrap(), std::f64::consts::PI);
        d.finish().unwrap();
    }

    #[test]
    fn byte_blobs_round_trip() {
        let mut e = Encoder::new();
        e.bytes(&[1, 2, 3]).bytes(&[]);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.bytes_vec().unwrap(), vec![1, 2, 3]);
        assert!(d.bytes_vec().unwrap().is_empty());
        d.finish().unwrap();
    }

    #[test]
    fn tags_catch_section_mismatch() {
        let mut e = Encoder::new();
        e.tag("gmm").u32(4);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let err = d.tag("dnn").unwrap_err();
        assert!(err.message.contains("expected section"));
    }

    #[test]
    fn truncation_is_detected() {
        let mut e = Encoder::new();
        e.f32_slice(&[1.0, 2.0, 3.0]);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes[..bytes.len() - 2]);
        assert!(d.f32_vec().is_err());
    }

    #[test]
    fn bogus_length_is_rejected() {
        // A vector claiming 2^31 elements must not allocate.
        let mut e = Encoder::new();
        e.u32(0x8000_0000);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert!(d.f32_vec().is_err());
    }

    #[test]
    fn invalid_bool_rejected() {
        let mut d = Decoder::new(&[7]);
        assert!(d.bool().is_err());
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut e = Encoder::new();
        e.u32(1);
        let mut extra = e.into_bytes();
        extra.push(0);
        let mut d = Decoder::new(&extra);
        let _ = d.u32().unwrap();
        assert!(d.finish().is_err());
    }

    #[test]
    fn strings_round_trip() {
        let mut rng = Mix(0x5eed_0001);
        for case in 0..256 {
            let len = rng.below(81) as usize;
            let s: String = (0..len)
                .map(|_| char::from_u32((rng.below(0xd7ff) as u32).max(1)).unwrap_or('?'))
                .collect();
            let mut e = Encoder::new();
            e.str(&s);
            let bytes = e.into_bytes();
            let mut d = Decoder::new(&bytes);
            assert_eq!(d.str().unwrap(), s, "case {case}");
            assert!(d.finish().is_ok(), "case {case}");
        }
    }

    #[test]
    fn f32_vectors_round_trip() {
        let mut rng = Mix(0x5eed_0002);
        for case in 0..256 {
            let len = rng.below(200) as usize;
            let xs: Vec<f32> = (0..len)
                .map(|_| (rng.next() as f64 / u64::MAX as f64 * 2e6 - 1e6) as f32)
                .collect();
            let mut e = Encoder::new();
            e.f32_slice(&xs);
            let bytes = e.into_bytes();
            let mut d = Decoder::new(&bytes);
            assert_eq!(d.f32_vec().unwrap(), xs, "case {case}");
        }
    }

    #[test]
    fn string_lists_round_trip() {
        let mut rng = Mix(0x5eed_0003);
        for case in 0..256 {
            let n = rng.below(30) as usize;
            let xs: Vec<String> = (0..n)
                .map(|_| {
                    let len = rng.below(13) as usize;
                    (0..len)
                        .map(|_| (b'a' + rng.below(26) as u8) as char)
                        .collect()
                })
                .collect();
            let mut e = Encoder::new();
            e.str_slice(&xs);
            let bytes = e.into_bytes();
            let mut d = Decoder::new(&bytes);
            assert_eq!(d.str_vec().unwrap(), xs, "case {case}");
        }
    }

    #[test]
    fn wire_len_is_exact_up_to_the_prefix_maximum() {
        assert_eq!(wire_len(0), 0);
        assert_eq!(wire_len(1), 1);
        assert_eq!(wire_len(u32::MAX as usize), u32::MAX);
    }

    /// Regression: lengths ≥ 2^32 used to be written as `len as u32`,
    /// silently truncating (a 2^32 + 3 byte blob wrote prefix 3) and
    /// desynchronising every field after it. Every length-prefixed write —
    /// `str`/`bytes`/`f32_slice`/`u32_slice`/`str_slice` — now routes
    /// through `wire_len`, which panics with the offending length instead.
    #[test]
    #[should_panic(expected = "exceeds the u32 length prefix")]
    #[cfg(target_pointer_width = "64")]
    fn oversize_length_panics_instead_of_truncating() {
        wire_len(u32::MAX as usize + 3);
    }

    /// Regression: `str_vec` lacked the length-vs-remaining preflight that
    /// `f32_vec`/`u32_vec` have, so a tiny hostile frame claiming 2^31
    /// zero-length strings reserved gigabytes of `Vec<String>` capacity
    /// before decoding failed. The guard must reject the count up front —
    /// instantly and without allocating.
    #[test]
    fn hostile_string_list_count_is_rejected_before_allocating() {
        for claimed in [0x8000_0000u32, u32::MAX] {
            let mut e = Encoder::new();
            e.u32(claimed);
            let bytes = e.into_bytes();
            let mut d = Decoder::new(&bytes);
            let err = d.str_vec().unwrap_err();
            assert!(
                err.message.contains("exceeds remaining bytes"),
                "claimed {claimed}: {err}"
            );
        }
        // A plausible count with insufficient backing bytes is also
        // rejected by the preflight, not by running off the buffer midway.
        let mut e = Encoder::new();
        e.u32(10).u32(0); // claims 10 strings, supplies one empty one
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert!(d.str_vec().is_err());
    }

    #[test]
    fn random_bytes_never_panic() {
        let mut rng = Mix(0x5eed_0004);
        for _ in 0..512 {
            let len = rng.below(120) as usize;
            let bytes: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
            let mut d = Decoder::new(&bytes);
            let _ = d.str();
            let _ = d.f32_vec();
            let _ = d.str_vec();
            let _ = d.bytes_vec();
            let _ = d.u64();
            let _ = d.finish();
        }
    }
}
