//! Figure/table reproductions that require running the real pipeline and
//! kernels on this machine.

use std::time::{Duration, Instant};

use sirius::pipeline::{Sirius, SiriusConfig};
use sirius::profile::Profiler;
use sirius::taxonomy::{QueryKind, VOICE_QUERIES};
use sirius::{prepare_input_set, PreparedQuery};
use sirius_dcsim::gap;
use sirius_suite::{measure, standard_suite, Measurement};

use crate::format::{duration, Table};

/// A built pipeline plus its prepared input set and profiling results.
pub struct MeasuredContext {
    /// The trained end-to-end pipeline.
    pub sirius: Sirius,
    /// Synthesized audio/images for the 42-query input set.
    pub prepared: Vec<PreparedQuery>,
    /// Profiler filled by running every query once.
    pub profiler: Profiler,
    /// End-to-end latency per query, aligned with `prepared`.
    pub latencies: Vec<Duration>,
    /// Mean web-search query latency on the same corpus.
    pub websearch_mean: Duration,
}

impl MeasuredContext {
    /// Builds the pipeline, runs all 42 queries, and measures web search.
    pub fn build() -> Self {
        let sirius = Sirius::build(SiriusConfig::default());
        let prepared = prepare_input_set(&sirius, 0xbead);
        let mut profiler = Profiler::new();
        let mut latencies = Vec::with_capacity(prepared.len());
        for p in &prepared {
            let input = p.input();
            let t = Instant::now();
            let response = sirius.process(&input);
            latencies.push(t.elapsed());
            profiler.record(p.spec.kind, &response);
        }
        // Web-search baseline: the raw BM25 engine on the same corpus.
        let engine = sirius.qa().search_engine();
        let queries: Vec<String> = VOICE_QUERIES
            .iter()
            .map(|(text, _)| text.to_lowercase())
            .collect();
        let t = Instant::now();
        let mut reps = 0u32;
        for _ in 0..50 {
            for q in &queries {
                let _ = engine.search(q, 10);
                reps += 1;
            }
        }
        let websearch_mean = t.elapsed() / reps.max(1);
        Self {
            sirius,
            prepared,
            profiler,
            latencies,
            websearch_mean,
        }
    }

    /// Mean end-to-end latency over the whole input set.
    pub fn sirius_mean(&self) -> Duration {
        self.latencies.iter().sum::<Duration>() / self.latencies.len().max(1) as u32
    }

    /// Measured scalability gap (Sirius mean / web-search mean).
    pub fn measured_gap(&self) -> f64 {
        gap::scalability_gap(
            self.sirius_mean().as_secs_f64(),
            self.websearch_mean.as_secs_f64(),
        )
    }
}

/// Table 1: the query taxonomy with measured input-set counts.
pub fn table1(ctx: &MeasuredContext) -> Table {
    let mut t = Table::new("Table 1: Query Taxonomy");
    t.header(["Query Type", "Example", "Service", "# Queries"]);
    let count = |k: QueryKind| {
        ctx.prepared
            .iter()
            .filter(|p| p.spec.kind == k)
            .count()
            .to_string()
    };
    t.row([
        "Voice Command (VC)".to_owned(),
        "\"Set my alarm for 8am.\"".to_owned(),
        "ASR".to_owned(),
        count(QueryKind::VoiceCommand),
    ]);
    t.row([
        "Voice Query (VQ)".to_owned(),
        "\"Who was elected 44th president?\"".to_owned(),
        "ASR & QA".to_owned(),
        count(QueryKind::VoiceQuery),
    ]);
    t.row([
        "Voice-Image Query (VIQ)".to_owned(),
        "\"When does this restaurant close?\"".to_owned(),
        "ASR, QA & IMM".to_owned(),
        count(QueryKind::VoiceImageQuery),
    ]);
    t
}

/// Figure 7a: the measured scalability gap.
pub fn fig7a(ctx: &MeasuredContext) -> Table {
    let mut t = Table::new("Fig 7a: Scalability gap (measured on this machine)");
    t.header(["Workload", "mean query latency"]);
    t.row([
        "Web Search (BM25 engine)".to_owned(),
        duration(ctx.websearch_mean),
    ]);
    t.row([
        "Sirius (42-query input set)".to_owned(),
        duration(ctx.sirius_mean()),
    ]);
    t.row([
        "scalability gap".to_owned(),
        format!("{:.0}x", ctx.measured_gap()),
    ]);
    t.note("paper: 91 ms vs ~15 s -> 165x; absolute times differ, the orders-of-magnitude gap is the claim");
    t
}

/// Figure 7b: latency across query types.
pub fn fig7b(ctx: &MeasuredContext) -> Table {
    let mut t = Table::new("Fig 7b: Latency across query types");
    t.header(["Type", "count", "mean", "min", "max", "p95", "p99"]);
    t.row([
        "WS".to_owned(),
        "16".to_owned(),
        duration(ctx.websearch_mean),
        "-".to_owned(),
        "-".to_owned(),
        "-".to_owned(),
        "-".to_owned(),
    ]);
    for (kind, stats) in ctx.profiler.latency_stats() {
        t.row([
            kind.to_owned(),
            stats.count.to_string(),
            duration(stats.mean),
            duration(stats.min),
            duration(stats.max),
            duration(stats.p95),
            duration(stats.p99),
        ]);
    }
    t.note("paper shape: VC < VQ < VIQ, all orders of magnitude above WS");
    t
}

/// Figure 8a: latency variability per service.
pub fn fig8a(ctx: &MeasuredContext) -> Table {
    let mut t = Table::new("Fig 8a: Latency variability across services");
    t.header([
        "Service", "count", "mean", "p50", "p95", "min", "max", "max/min",
    ]);
    for (service, stats) in ctx.profiler.service_latency_spread() {
        if stats.count == 0 {
            continue;
        }
        let spread = stats.max.as_secs_f64() / stats.min.as_secs_f64().max(1e-12);
        t.row([
            service.to_owned(),
            stats.count.to_string(),
            duration(stats.mean),
            duration(stats.p50),
            duration(stats.p95),
            duration(stats.min),
            duration(stats.max),
            format!("{spread:.1}x"),
        ]);
    }
    t.note("paper: QA has the highest variability (1.7 s to 35 s), ASR/IMM are stable");
    t
}

/// Figure 8b: QA component breakdown per voice query.
pub fn fig8b(ctx: &MeasuredContext) -> Table {
    let mut t = Table::new("Fig 8b: OpenEphyra breakdown per voice query");
    t.header([
        "Query",
        "stemmer",
        "regex",
        "CRF",
        "search",
        "filter/extract",
        "total",
    ]);
    for (i, p) in ctx
        .prepared
        .iter()
        .enumerate()
        .filter(|(_, p)| p.spec.kind == QueryKind::VoiceQuery)
    {
        // Re-run QA alone so the per-query breakdown is exact.
        let r = ctx.sirius.qa().answer(p.spec.text);
        let b = &r.breakdown;
        let tot = b.total.as_secs_f64().max(1e-12);
        let pct = |d: Duration| format!("{:.0}%", d.as_secs_f64() / tot * 100.0);
        t.row([
            format!("q{}", i - 15), // VQ entries follow the 16 VC entries.
            pct(b.stemmer),
            pct(b.regex),
            pct(b.crf),
            pct(b.search),
            pct(b.filtering),
            duration(b.total),
        ]);
    }
    t.note("paper: stemmer/regex/CRF shares vary per query with the documents filtered");
    t
}

/// Figure 8c: QA latency vs document-filter hits.
pub fn fig8c(ctx: &MeasuredContext) -> Table {
    let mut t = Table::new("Fig 8c: QA latency vs document-filter hits");
    t.header(["query#", "filter hits", "QA latency"]);
    for (i, s) in ctx.profiler.filter_hit_samples().iter().enumerate() {
        t.row([
            format!("{}", i + 1),
            s.hits.to_string(),
            duration(s.latency),
        ]);
    }
    t.note(format!(
        "Pearson correlation(hits, latency) = {:.2} (paper: strongly correlated)",
        ctx.profiler.filter_hit_correlation()
    ));
    t
}

/// Figure 9: cycle breakdown per service (measured).
pub fn fig9(ctx: &MeasuredContext) -> Table {
    let mut t = Table::new("Fig 9: Cycle breakdown per service (measured wall-clock shares)");
    t.header(["Service", "component", "share"]);
    for (service, breakdown) in [
        ("ASR", ctx.profiler.asr_breakdown()),
        ("QA", ctx.profiler.qa_breakdown()),
        ("IMM", ctx.profiler.imm_breakdown()),
    ] {
        for (component, share) in breakdown {
            t.row([
                service.to_owned(),
                component.to_owned(),
                format!("{:.0}%", share * 100.0),
            ]);
        }
    }
    t.note("paper: scoring dominates ASR; stemmer+regex+CRF ~85% of QA; FE/FD dominate IMM");
    t
}

/// Extension: Figure 20 recomputed with this machine's measured service
/// times as the baseline weights (instead of the paper's 4.2 s / 10 s / 5 s).
pub fn fig20_measured(ctx: &MeasuredContext) -> Table {
    use sirius_accel::platform::PlatformKind;
    use sirius_dcsim::design::{query_latency_reduction, BaselineSeconds, QueryClass};

    let spread = ctx.profiler.service_latency_spread();
    let secs = |name: &str| -> f64 {
        spread
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, s)| s.mean.as_secs_f64())
            .unwrap_or(1.0)
    };
    let baselines = BaselineSeconds {
        asr: secs("ASR"),
        qa: secs("QA"),
        imm: secs("IMM"),
    };
    let mut t = Table::new("Extension: Fig 20 with measured baseline service times");
    t.header(["Query", "GPU latency red.", "FPGA latency red."]);
    for class in QueryClass::ALL {
        t.row([
            class.to_string(),
            format!(
                "{:.1}x",
                query_latency_reduction(class, PlatformKind::Gpu, &baselines)
            ),
            format!(
                "{:.1}x",
                query_latency_reduction(class, PlatformKind::Fpga, &baselines)
            ),
        ]);
    }
    t.note(format!(
        "measured baselines: ASR {:.1} ms, QA {:.1} ms, IMM {:.1} ms (paper used 4.2 s / ~10 s / ~5 s)",
        baselines.asr * 1e3,
        baselines.qa * 1e3,
        baselines.imm * 1e3
    ));
    t.note("our QA/IMM are much lighter relative to ASR than the paper's, so VQ/VIQ reductions skew toward the ASR speedup");
    t
}

/// Table 4 + the measured CMP column of Table 5: Sirius Suite kernels.
pub fn suite_cmp(scale: f64, threads: usize) -> (Table, Vec<Measurement>) {
    let suite = standard_suite(scale, 1);
    let mut t = Table::new(format!(
        "Table 4 + Table 5 CMP column: Sirius Suite at scale {scale}, {threads} threads (measured)"
    ));
    t.header([
        "Kernel",
        "Service",
        "items",
        "baseline",
        "parallel",
        "speedup",
        "paper CMP",
        "checksum",
    ]);
    let mut measurements = Vec::new();
    for kernel in &suite {
        let m = measure(kernel.as_ref(), threads, 2);
        let published = sirius_accel::paper::table5(m.name, 0).expect("kernel in table");
        t.row([
            m.name.to_owned(),
            m.service.to_string(),
            m.items.to_string(),
            duration(m.baseline_time),
            duration(m.parallel_time),
            format!("{:.1}x", m.speedup()),
            format!("{published:.1}x"),
            if m.checksum_match {
                "ok".to_owned()
            } else {
                "MISMATCH".to_owned()
            },
        ]);
        measurements.push(m);
    }
    (t, measurements)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_cmp_runs_at_tiny_scale() {
        let (table, ms) = suite_cmp(0.02, 2);
        assert_eq!(ms.len(), 7);
        assert!(ms.iter().all(|m| m.checksum_match));
        assert!(table.render().contains("GMM"));
    }
}
