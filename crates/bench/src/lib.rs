//! # sirius-bench
//!
//! The benchmark harness of the Sirius reproduction: regenerates every table
//! and figure of the paper's evaluation (see DESIGN.md's per-experiment
//! index). The `figures` binary prints the reproductions; Criterion benches
//! under `benches/` measure the kernels, services and end-to-end pipeline.

#![warn(missing_docs)]

pub mod format;
pub mod measured;
pub mod modeled;

pub use format::Table;
pub use measured::MeasuredContext;

/// The experiments the `figures` binary can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Experiment {
    /// Table 1 (query taxonomy).
    Table1,
    /// Table 2 (voice-query input set).
    Table2,
    /// Table 3 (platform specs).
    Table3,
    /// Table 4 + measured Table 5 CMP column (Sirius Suite).
    Table4,
    /// Table 5 / Figure 13 (kernel speedups, modeled vs paper).
    Table5,
    /// Table 6 (power/cost).
    Table6,
    /// Table 7 (TCO parameters).
    Table7,
    /// Table 8 (homogeneous DC designs).
    Table8,
    /// Table 9 (heterogeneous DC designs).
    Table9,
    /// Figure 7a (scalability gap, measured).
    Fig7a,
    /// Figure 7b (latency across query types, measured).
    Fig7b,
    /// Figure 8a (service latency variability, measured).
    Fig8a,
    /// Figure 8b (QA breakdown per query, measured).
    Fig8b,
    /// Figure 8c (latency vs filter hits, measured).
    Fig8c,
    /// Figure 9 (cycle breakdown per service, measured).
    Fig9,
    /// Figure 10 (IPC/bottleneck model).
    Fig10,
    /// Figure 14 (service latency across platforms).
    Fig14,
    /// Figure 15 (performance per watt).
    Fig15,
    /// Figure 16 (throughput improvement).
    Fig16,
    /// Figure 17 (throughput at load levels).
    Fig17,
    /// Figure 18 (normalized TCO).
    Fig18,
    /// Figure 19 (latency/TCO trade-off).
    Fig19,
    /// Figure 20 (query-level DC results).
    Fig20,
    /// Figure 21 (bridging the gap).
    Fig21,
    /// Extension: roofline analysis (not a paper figure).
    Roofline,
    /// Extension: Figure 20 with measured baseline service times.
    Fig20Measured,
}

impl Experiment {
    /// All experiments, in paper order (the trailing entries are extensions
    /// beyond the paper's figures).
    pub const ALL: [Experiment; 26] = [
        Experiment::Table1,
        Experiment::Table2,
        Experiment::Fig7a,
        Experiment::Fig7b,
        Experiment::Fig8a,
        Experiment::Fig8b,
        Experiment::Fig8c,
        Experiment::Fig9,
        Experiment::Fig10,
        Experiment::Table3,
        Experiment::Table4,
        Experiment::Table5,
        Experiment::Table6,
        Experiment::Fig14,
        Experiment::Fig15,
        Experiment::Fig16,
        Experiment::Fig17,
        Experiment::Table7,
        Experiment::Fig18,
        Experiment::Fig19,
        Experiment::Table8,
        Experiment::Table9,
        Experiment::Fig20,
        Experiment::Fig21,
        Experiment::Roofline,
        Experiment::Fig20Measured,
    ];

    /// Parses an experiment id like "fig14" or "table5".
    pub fn parse(s: &str) -> Option<Experiment> {
        let key = s.to_lowercase();
        Experiment::ALL.iter().copied().find(|e| e.id() == key)
    }

    /// Canonical id string.
    pub fn id(self) -> &'static str {
        match self {
            Experiment::Table1 => "table1",
            Experiment::Table2 => "table2",
            Experiment::Table3 => "table3",
            Experiment::Table4 => "table4",
            Experiment::Table5 => "table5",
            Experiment::Table6 => "table6",
            Experiment::Table7 => "table7",
            Experiment::Table8 => "table8",
            Experiment::Table9 => "table9",
            Experiment::Fig7a => "fig7a",
            Experiment::Fig7b => "fig7b",
            Experiment::Fig8a => "fig8a",
            Experiment::Fig8b => "fig8b",
            Experiment::Fig8c => "fig8c",
            Experiment::Fig9 => "fig9",
            Experiment::Fig10 => "fig10",
            Experiment::Fig14 => "fig14",
            Experiment::Fig15 => "fig15",
            Experiment::Fig16 => "fig16",
            Experiment::Fig17 => "fig17",
            Experiment::Fig18 => "fig18",
            Experiment::Fig19 => "fig19",
            Experiment::Fig20 => "fig20",
            Experiment::Fig21 => "fig21",
            Experiment::Roofline => "roofline",
            Experiment::Fig20Measured => "fig20m",
        }
    }

    /// Whether the experiment needs the measured pipeline context.
    pub fn needs_measurement(self) -> bool {
        matches!(
            self,
            Experiment::Table1
                | Experiment::Fig7a
                | Experiment::Fig7b
                | Experiment::Fig8a
                | Experiment::Fig8b
                | Experiment::Fig8c
                | Experiment::Fig9
                | Experiment::Fig21
                | Experiment::Fig20Measured
        )
    }

    /// Runs the experiment, using `ctx` when measurement is needed and
    /// `suite_scale`/`threads` for the kernel table.
    pub fn run(self, ctx: Option<&MeasuredContext>, suite_scale: f64, threads: usize) -> Table {
        match self {
            Experiment::Table1 => measured::table1(ctx.expect("needs context")),
            Experiment::Table2 => table2(),
            Experiment::Table3 => modeled::table3(),
            Experiment::Table4 => measured::suite_cmp(suite_scale, threads).0,
            Experiment::Table5 => modeled::table5(),
            Experiment::Table6 => modeled::table6(),
            Experiment::Table7 => modeled::table7(),
            Experiment::Table8 => modeled::table8(),
            Experiment::Table9 => modeled::table9(),
            Experiment::Fig7a => measured::fig7a(ctx.expect("needs context")),
            Experiment::Fig7b => measured::fig7b(ctx.expect("needs context")),
            Experiment::Fig8a => measured::fig8a(ctx.expect("needs context")),
            Experiment::Fig8b => measured::fig8b(ctx.expect("needs context")),
            Experiment::Fig8c => measured::fig8c(ctx.expect("needs context")),
            Experiment::Fig9 => measured::fig9(ctx.expect("needs context")),
            Experiment::Fig10 => modeled::fig10(),
            Experiment::Fig14 => modeled::fig14(),
            Experiment::Fig15 => modeled::fig15(),
            Experiment::Fig16 => modeled::fig16(),
            Experiment::Fig17 => modeled::fig17(),
            Experiment::Fig18 => modeled::fig18(),
            Experiment::Fig19 => modeled::fig19(),
            Experiment::Fig20 => modeled::fig20(),
            Experiment::Fig21 => modeled::fig21(ctx.map(MeasuredContext::measured_gap)),
            Experiment::Roofline => modeled::roofline(),
            Experiment::Fig20Measured => measured::fig20_measured(ctx.expect("needs context")),
        }
    }
}

/// Table 2-style listing of the voice-query input set.
pub fn table2() -> Table {
    let mut t = Table::new("Table 2: Voice Query input set");
    t.header(["Q#", "Query", "expected answer"]);
    for (i, (text, answer)) in sirius::taxonomy::VOICE_QUERIES.iter().enumerate() {
        t.row([
            format!("q{}", i + 1),
            format!("\"{text}?\""),
            (*answer).to_owned(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_ids_round_trip() {
        for e in Experiment::ALL {
            assert_eq!(Experiment::parse(e.id()), Some(e), "{}", e.id());
        }
        assert_eq!(Experiment::parse("FIG14"), Some(Experiment::Fig14));
        assert_eq!(Experiment::parse("nonsense"), None);
    }

    #[test]
    fn modeled_experiments_run_without_context() {
        for e in Experiment::ALL {
            if !e.needs_measurement() && e != Experiment::Table4 {
                let t = e.run(None, 0.02, 2);
                assert!(!t.render().is_empty(), "{}", e.id());
            }
        }
    }

    #[test]
    fn table2_lists_16_queries() {
        let s = table2().render();
        assert!(s.contains("q16"));
        assert!(s.contains("capital of Italy"));
    }
}
