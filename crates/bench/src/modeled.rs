//! Figure/table reproductions that come from the analytic models
//! (`sirius-accel`, `sirius-dcsim`) — everything that does not require
//! running the pipeline on this machine.

use sirius_accel::cpu_model;
use sirius_accel::model::{kernel_profiles, paper};
use sirius_accel::platform::{all_specs, PlatformKind};
use sirius_accel::service::{perf_per_watt_vs_cmp, service_speedup, ServiceKind};
use sirius_dcsim::design::{
    self, design_point, heterogeneous_design, homogeneous_design, mean_query_latency_reduction,
    query_level_metrics, Objective,
};
use sirius_dcsim::gap;
use sirius_dcsim::queue::throughput_improvement_at_load;
use sirius_dcsim::tco::{monthly_tco, ServerConfig, TcoParams};

use crate::format::{speedup, Table};

/// Extension: roofline analysis of the kernels across platforms.
pub fn roofline() -> Table {
    use sirius_accel::roofline;
    let mut t = Table::new("Extension: Roofline analysis (attainable GFLOP/s)");
    t.header([
        "Kernel",
        "intensity (FLOP/B)",
        "CMP",
        "GPU",
        "Phi",
        "FPGA",
        "bound",
    ]);
    for k in roofline::kernel_arithmetic() {
        let cells: Vec<String> = PlatformKind::ALL
            .iter()
            .map(|&p| format!("{:.0}", roofline::attainable(p, &k).attainable_gflops))
            .collect();
        let bound = roofline::attainable(PlatformKind::Gpu, &k).bound;
        let mut row = vec![
            k.name.to_owned(),
            format!("{:.2}", k.intensity_flops_per_byte),
        ];
        row.extend(cells);
        row.push(format!("{bound:?} (GPU)"));
        t.row(row);
    }
    for p in PlatformKind::ALL {
        t.note(format!(
            "{p} ridge point: {:.1} FLOP/byte",
            roofline::ridge_point(p)
        ));
    }
    t.note("all Sirius kernels sit left of the CPU/GPU ridge -> data layout (coalescing) governs achieved speedup");
    t
}

/// Table 3: platform specifications.
pub fn table3() -> Table {
    let mut t = Table::new("Table 3: Platform Specifications");
    t.header(["", "Multicore", "GPU", "Phi", "FPGA"]);
    let specs = all_specs();
    let cell = |f: &dyn Fn(&sirius_accel::PlatformSpec) -> String| -> Vec<String> {
        specs.iter().map(f).collect()
    };
    let mut row = |name: &str, vals: Vec<String>| {
        let mut cells = vec![name.to_owned()];
        cells.extend(vals);
        t.row(cells);
    };
    row("Model", cell(&|s| s.model.to_owned()));
    row(
        "Frequency",
        cell(&|s| format!("{:.2} GHz", s.frequency_ghz)),
    );
    row(
        "# Cores",
        cell(&|s| s.cores.map_or("N/A".into(), |c| c.to_string())),
    );
    row(
        "# HW Threads",
        cell(&|s| s.hw_threads.map_or("N/A".into(), |c| c.to_string())),
    );
    row("Memory", cell(&|s| format!("{} GB", s.memory_gb)));
    row("Memory BW", cell(&|s| format!("{} GB/s", s.memory_bw_gbs)));
    row("Peak TFLOPS", cell(&|s| format!("{}", s.peak_tflops)));
    t
}

/// Table 6: platform power and cost.
pub fn table6() -> Table {
    let mut t = Table::new("Table 6: Platform Power and Cost");
    t.header(["Platform", "Power TDP (W)", "Cost ($)"]);
    for s in all_specs() {
        t.row([
            s.model.to_owned(),
            format!("{}", s.tdp_watts),
            format!("{:.0}", s.cost_usd),
        ]);
    }
    t
}

/// Table 5 / Figure 13: kernel speedups across platforms, modeled vs paper.
pub fn table5() -> Table {
    let mut t = Table::new("Table 5 / Fig 13: Sirius Suite speedups (modeled vs paper)");
    t.header([
        "Kernel",
        "CMP",
        "GPU",
        "Phi",
        "FPGA",
        "paper CMP",
        "paper GPU",
        "paper Phi",
        "paper FPGA",
    ]);
    for p in kernel_profiles() {
        let modeled: Vec<String> = PlatformKind::ALL
            .iter()
            .map(|&k| speedup(p.modeled_speedup(k)))
            .collect();
        let published: Vec<String> = (0..4)
            .map(|c| speedup(paper::table5(p.name, c).expect("kernel in table")))
            .collect();
        let mut row = vec![p.name.to_owned()];
        row.extend(modeled);
        row.extend(published);
        t.row(row);
    }
    t.note("GPU/Phi/FPGA columns are modeled (calibrated); CMP is also measured live by `cargo bench -p sirius-bench` and the suite_cmp experiment.");
    t
}

/// Figure 10: IPC and bottleneck breakdown per kernel.
pub fn fig10() -> Table {
    let mut t = Table::new("Fig 10: IPC and pipeline-slot breakdown (modeled top-down)");
    t.header([
        "Kernel",
        "IPC",
        "retiring",
        "frontend",
        "bad spec",
        "backend",
        "stall-free speedup",
    ]);
    for (name, mix) in cpu_model::kernel_mixes() {
        let b = cpu_model::analyze(&mix);
        t.row([
            name.to_owned(),
            format!("{:.2}", b.ipc),
            format!("{:.0}%", b.retiring * 100.0),
            format!("{:.0}%", b.frontend * 100.0),
            format!("{:.0}%", b.bad_speculation * 100.0),
            format!("{:.0}%", b.backend * 100.0),
            speedup(b.stall_free_speedup(&mix)),
        ]);
    }
    t.note(
        "paper: even with all stalls removed, speedup is bound by ~3x -> acceleration is needed",
    );
    t
}

/// Figure 14: service latency across platforms (speedups over 1 core).
pub fn fig14() -> Table {
    let mut t = Table::new("Fig 14: Service latency improvement across platforms");
    t.header(["Service", "CMP (sub-query)", "GPU", "Phi", "FPGA"]);
    for s in ServiceKind::ALL {
        let cells: Vec<String> = PlatformKind::ALL
            .iter()
            .map(|&k| speedup(service_speedup(s, k)))
            .collect();
        let mut row = vec![s.to_string()];
        row.extend(cells);
        t.row(row);
    }
    t.note("paper shape: FPGA best everywhere except ASR (DNN), where the GPU wins");
    t.note(format!(
        "ASR (GMM) on FPGA: 4.2 s -> {:.2} s (paper: 4.2 s -> 0.19 s)",
        4.2 / service_speedup(ServiceKind::AsrGmm, PlatformKind::Fpga)
    ));
    t
}

/// Figure 15: performance per watt, normalized to the multicore.
pub fn fig15() -> Table {
    let mut t = Table::new("Fig 15: Performance per Watt (normalized to CMP)");
    t.header(["Service", "CMP", "GPU", "Phi", "FPGA"]);
    for s in ServiceKind::ALL {
        let cells: Vec<String> = PlatformKind::ALL
            .iter()
            .map(|&k| format!("{:.2}", perf_per_watt_vs_cmp(s, k)))
            .collect();
        let mut row = vec![s.to_string()];
        row.extend(cells);
        t.row(row);
    }
    t.note("paper shape: FPGA exceeds every platform (>12x for most services); GPU < 1 for QA");
    t
}

/// Figure 16: throughput improvement at 100% load.
pub fn fig16() -> Table {
    let mut t = Table::new("Fig 16: Throughput improvement (vs all-cores CMP baseline)");
    t.header(["Service", "CMP", "GPU", "Phi", "FPGA"]);
    for s in ServiceKind::ALL {
        let cells: Vec<String> = PlatformKind::ALL
            .iter()
            .map(|&k| speedup(design::throughput_improvement(s, k)))
            .collect();
        let mut row = vec![s.to_string()];
        row.extend(cells);
        t.row(row);
    }
    t.note("paper: GPU 13.7x for ASR (DNN); FPGA ~12.6x for IMM; QA gains are limited");
    t
}

/// Figure 17: throughput improvement at various M/M/1 load levels.
pub fn fig17() -> Table {
    let mut t = Table::new("Fig 17: Throughput improvement at various loads (M/M/1)");
    t.header([
        "Service/Platform",
        "rho=0.9",
        "rho=0.7",
        "rho=0.5",
        "rho=0.3",
    ]);
    for s in ServiceKind::ALL {
        for k in [PlatformKind::Gpu, PlatformKind::Fpga] {
            let su = service_speedup(s, k) / design::BASELINE_CORES;
            let su = su.max(1.0);
            let cells: Vec<String> = [0.9, 0.7, 0.5, 0.3]
                .iter()
                .map(|&rho| speedup(throughput_improvement_at_load(su, rho)))
                .collect();
            let mut row = vec![format!("{s} / {k}")];
            row.extend(cells);
            t.row(row);
        }
    }
    t.note("lower load -> larger improvement; the 100% load column of Fig 16 is the lower bound");
    t
}

/// Table 7: TCO model parameters.
pub fn table7() -> Table {
    let p = TcoParams::default();
    let mut t = Table::new("Table 7: TCO Model Parameters");
    t.header(["Parameter", "Value"]);
    t.row([
        "DC Depreciation Time".to_owned(),
        format!("{} years", p.dc_depreciation_years),
    ]);
    t.row([
        "Server Depreciation Time".to_owned(),
        format!("{} years", p.server_depreciation_years),
    ]);
    t.row([
        "Average Server Utilization".to_owned(),
        format!("{:.0}%", p.avg_utilization * 100.0),
    ]);
    t.row([
        "Electricity Cost".to_owned(),
        format!("${}/kWh", p.electricity_per_kwh),
    ]);
    t.row([
        "Datacenter Price".to_owned(),
        format!("${}/W", p.dc_price_per_watt),
    ]);
    t.row([
        "Datacenter Opex".to_owned(),
        format!("${}/W/month", p.dc_opex_per_watt_month),
    ]);
    t.row([
        "Server Opex".to_owned(),
        format!(
            "{:.0}% of Capex / year",
            p.server_opex_fraction_per_year * 100.0
        ),
    ]);
    t.row([
        "Server Price (baseline)".to_owned(),
        format!("${}", p.server_price),
    ]);
    t.row([
        "Server Power (baseline)".to_owned(),
        format!("{} W", p.server_power),
    ]);
    t.row(["PUE".to_owned(), format!("{}", p.pue)]);
    let base = monthly_tco(&ServerConfig::baseline(), &p);
    t.note(format!("baseline server monthly TCO: ${:.0}", base.total()));
    t
}

/// Figure 18: normalized datacenter TCO per service and platform.
pub fn fig18() -> Table {
    let params = TcoParams::default();
    let mut t = Table::new("Fig 18: Normalized DC TCO (CMP = 1.0; lower is better)");
    t.header(["Service", "CMP", "GPU", "Phi", "FPGA"]);
    for s in ServiceKind::ALL {
        let cells: Vec<String> = PlatformKind::ALL
            .iter()
            .map(|&k| format!("{:.2}", design_point(s, k, &params).tco_normalized))
            .collect();
        let mut row = vec![s.to_string()];
        row.extend(cells);
        t.row(row);
    }
    t.note("paper: GPU >8x reduction for ASR (DNN); FPGA >4x reduction for IMM");
    t
}

/// Figure 19: latency vs TCO trade-off scatter.
pub fn fig19() -> Table {
    let params = TcoParams::default();
    let mut t = Table::new("Fig 19: Latency vs TCO trade-off");
    t.header([
        "Service",
        "Platform",
        "latency improvement",
        "TCO improvement",
    ]);
    for p in design::design_space(&params) {
        if p.platform == PlatformKind::Multicore {
            continue;
        }
        t.row([
            p.service.to_string(),
            p.platform.to_string(),
            speedup(p.latency_improvement),
            speedup(1.0 / p.tco_normalized),
        ]);
    }
    t.note("paper: FPGA lowest latency for 3/4 services; GPU similar-or-better TCO at lower cost");
    t
}

/// Table 8: homogeneous DC designs per objective and candidate set.
pub fn table8() -> Table {
    let params = TcoParams::default();
    let all = PlatformKind::ALL.to_vec();
    let no_fpga = vec![
        PlatformKind::Multicore,
        PlatformKind::Gpu,
        PlatformKind::Phi,
    ];
    let no_fpga_gpu = vec![PlatformKind::Multicore, PlatformKind::Phi];
    let mut t = Table::new("Table 8: Homogeneous DC design");
    t.header(["Objective", "With FPGA", "Without FPGA", "Without FPGA+GPU"]);
    for obj in [
        Objective::MinLatency,
        Objective::MinTcoWithLatencyConstraint,
        Objective::MaxEfficiencyWithLatencyConstraint,
    ] {
        let pick = |c: &[PlatformKind]| {
            homogeneous_design(obj, c, &params).map_or("-".to_owned(), |p| p.to_string())
        };
        t.row([
            obj.to_string(),
            pick(&all),
            pick(&no_fpga),
            pick(&no_fpga_gpu),
        ]);
    }
    t.note("paper: FPGA / GPU / FPGA rows (latency, TCO, efficiency); CMP when FPGA+GPU excluded for TCO");
    t
}

/// Table 9: heterogeneous (partitioned) DC designs.
pub fn table9() -> Table {
    let params = TcoParams::default();
    let mut t = Table::new("Table 9: Heterogeneous (partitioned) DC design");
    t.header(["Objective", "ASR (GMM)", "ASR (DNN)", "QA", "IMM"]);
    for obj in [
        Objective::MinLatency,
        Objective::MinTcoWithLatencyConstraint,
        Objective::MaxEfficiencyWithLatencyConstraint,
    ] {
        let picks = heterogeneous_design(obj, &PlatformKind::ALL, &params);
        let cell = |s: ServiceKind| {
            picks
                .iter()
                .find(|(x, _)| *x == s)
                .map_or("-".to_owned(), |(_, p)| p.to_string())
        };
        t.row([
            obj.to_string().replace("Hmg", "Hetero"),
            cell(ServiceKind::AsrGmm),
            cell(ServiceKind::AsrDnn),
            cell(ServiceKind::Qa),
            cell(ServiceKind::Imm),
        ]);
    }
    t.note("paper row 1: GPU for ASR (DNN), FPGA elsewhere; row 2: GPU for ASR, FPGA for QA/IMM");
    t
}

/// Figure 20: query-level latency/TCO for the GPU and FPGA datacenters.
pub fn fig20() -> Table {
    let params = TcoParams::default();
    let mut t = Table::new("Fig 20: Query-level DC results (GPU and FPGA DCs)");
    t.header([
        "Query",
        "GPU latency red.",
        "GPU TCO red.",
        "FPGA latency red.",
        "FPGA TCO red.",
    ]);
    let gpu = query_level_metrics(PlatformKind::Gpu, &params);
    let fpga = query_level_metrics(PlatformKind::Fpga, &params);
    for (g, f) in gpu.iter().zip(&fpga) {
        t.row([
            g.class.to_string(),
            speedup(g.latency_reduction),
            speedup(1.0 / g.tco_normalized),
            speedup(f.latency_reduction),
            speedup(1.0 / f.tco_normalized),
        ]);
    }
    t.note(format!(
        "mean latency reduction: GPU {:.1}x (paper {:.0}x), FPGA {:.1}x (paper {:.0}x)",
        mean_query_latency_reduction(PlatformKind::Gpu),
        paper::GPU_MEAN_LATENCY_REDUCTION,
        mean_query_latency_reduction(PlatformKind::Fpga),
        paper::FPGA_MEAN_LATENCY_REDUCTION,
    ));
    t
}

/// Figure 21: bridging the scalability gap.
pub fn fig21(measured_gap: Option<f64>) -> Table {
    let g = measured_gap.unwrap_or(paper::SCALABILITY_GAP);
    let mut t = Table::new("Fig 21: Bridging the scalability gap");
    match measured_gap {
        Some(m) => t.note(format!(
            "gap measured on this machine: {m:.0}x (paper measured 165x on Haswell)"
        )),
        None => t.note("using the paper's 165x gap (run fig7a for the measured gap)"),
    };
    t.header(["Datacenter", "machine scaling needed"]);
    t.row(["General-purpose (baseline)".to_owned(), format!("{g:.0}x")]);
    t.row([
        "GPU-accelerated".to_owned(),
        format!(
            "{:.1}x",
            gap::bridged_gap(g, mean_query_latency_reduction(PlatformKind::Gpu))
        ),
    ]);
    t.row([
        "FPGA-accelerated".to_owned(),
        format!(
            "{:.1}x",
            gap::bridged_gap(g, mean_query_latency_reduction(PlatformKind::Fpga))
        ),
    ]);
    t.note("paper: 165x baseline; ~16x GPU; ~10x FPGA");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_modeled_tables_render() {
        for table in [
            table3(),
            table5(),
            table6(),
            table7(),
            fig10(),
            fig14(),
            fig15(),
            fig16(),
            fig17(),
            fig18(),
            fig19(),
            table8(),
            table9(),
            fig20(),
            fig21(None),
        ] {
            let s = table.render();
            assert!(s.len() > 50, "{s}");
        }
    }

    #[test]
    fn table8_selections_match_paper() {
        let s = table8().render();
        // Row order: latency -> FPGA; TCO -> GPU; efficiency -> FPGA.
        let lines: Vec<&str> = s.lines().collect();
        let row = |needle: &str| {
            lines
                .iter()
                .find(|l| l.contains(needle))
                .copied()
                .unwrap_or_else(|| panic!("row {needle} missing in:\n{s}"))
        };
        assert!(row("Hmg-latency").contains("FPGA"));
        assert!(row("Hmg-TCO").contains("GPU"));
        assert!(row("Hmg-power eff.").contains("FPGA"));
    }
}
