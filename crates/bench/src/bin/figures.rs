//! Prints the reproduction of every table and figure in the paper.
//!
//! Usage:
//!
//! ```text
//! figures [IDS...] [--scale S] [--threads N]
//!
//!   IDS        experiment ids (fig7a, table5, ...); default: all
//!   --scale S  Sirius Suite input scale (default 1.0; paper-sized ~20)
//!   --threads N  threads for the multicore kernel ports (default: CPUs)
//! ```

use sirius_bench::{Experiment, MeasuredContext};

fn main() {
    let mut ids: Vec<Experiment> = Vec::new();
    let mut scale = 1.0f64;
    let mut threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--threads needs a number"));
            }
            "--help" | "-h" => {
                println!("figures [IDS...] [--scale S] [--threads N]");
                println!("experiments: {}", all_ids().join(" "));
                return;
            }
            id => match Experiment::parse(id) {
                Some(e) => ids.push(e),
                None => die(&format!(
                    "unknown experiment {id:?}; known: {}",
                    all_ids().join(" ")
                )),
            },
        }
    }
    if ids.is_empty() {
        ids = Experiment::ALL.to_vec();
    }

    let needs_ctx = ids.iter().any(|e| e.needs_measurement());
    let ctx = if needs_ctx {
        eprintln!(
            "building Sirius (training ASR/QA/IMM models) and running the 42-query input set..."
        );
        Some(MeasuredContext::build())
    } else {
        None
    };

    for e in ids {
        let table = e.run(ctx.as_ref(), scale, threads);
        println!("{table}");
    }
}

fn all_ids() -> Vec<&'static str> {
    Experiment::ALL.iter().map(|e| e.id()).collect()
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
