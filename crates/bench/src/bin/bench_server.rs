//! Open-loop load harness for the staged serving runtime (`BENCH_server.json`).
//!
//! Turns the paper's Figure 17 from a formula into a measurement:
//!
//! 1. **Serial baseline** — the monolithic `Sirius::process` loop over the
//!    42-query input set gives the zero-load service time (and so the M/M/1
//!    service rate μ) plus the serial queries/sec floor.
//! 2. **Open-loop sweep** — a Poisson arrival process drives the staged
//!    runtime at ρ ∈ {0.2, 0.4, 0.6, 0.8}. All telemetry comes from the
//!    runtime's own `sirius-obs` registry snapshots: the sojourn histogram
//!    is lined up against the `Mm1` prediction, the per-stage
//!    queue-wait/service histograms against a per-stage tandem model
//!    (`sirius_dcsim::TandemComparison`), and both cross-checks of the
//!    telemetry itself are reported — per-stage time must reconcile with
//!    the end-to-end sojourn, and bucketed percentiles must agree with the
//!    exact nearest-rank values within one bucket width.
//! 3. **Admission-policy sweep** — shed-on-full vs deadline-aware admission
//!    head-to-head at ρ ∈ {0.8, 0.9, 1.1, 1.5} under an SLO of
//!    8 × the mean service time, with paired arrival processes. Reported
//!    per policy: goodput (SLO-met completions per second), shed and
//!    expired rates, and p99 sojourn; the shed-on-full shed rates are
//!    cross-checked against the closed-form M/M/1/K blocking probability
//!    (`sirius_dcsim::ShedComparison`), and admitted outputs are checked
//!    against the serial references.
//! 4. **Batching sweep** — the cross-query ASR batch collector's
//!    `(max_batch, max_delay)` grid at ρ ∈ {0.8, 1.1, 1.5} of the serial
//!    single-core DNN rate, with paired arrivals per load. Reported per
//!    point: throughput, p50/p99 sojourn and the achieved batch-size
//!    distribution; per load, the Pareto frontier over (throughput, p99).
//!    Every output is checked bit-for-bit against the serial DNN
//!    references.
//! 5. **Streaming sweep** — the streaming ASR stage (chunked ingestion at
//!    0.25× real-time pacing with speculative downstream pipelining) at
//!    chunk sizes {80, 160, 320} ms and ρ ∈ {0.2, 0.8, 1.1} of the
//!    measured streaming occupancy capacity. Reported per point:
//!    time-to-first-partial p50, from-submit p50/p99, and **from-end**
//!    p50/p99 — sojourn measured from the instant the last audio chunk was
//!    due — which must fall below the serial sum-of-stages floor at
//!    ρ ≤ 0.8 (the decode overlapped audio arrival, so only the tail and
//!    downstream remain). Outputs are checked bit-for-bit against the
//!    serial references.
//! 6. **Saturation** — closed-loop clients hammer the runtime with 1 and
//!    with `--workers` workers per heavy stage; staged outputs are checked
//!    against the serial references query-by-query.
//! 7. **Cluster sweep** — the sharded `SiriusCluster` front-end at
//!    N ∈ {1, 2, 4} replicas × every routing policy. A deep-overload
//!    round-robin probe first measures each replica count's capacity on
//!    this machine; the measured points then run open-loop at 1.25 × that
//!    capacity (deliberately past saturation, with queues deep enough
//!    never to shed, so the drain rate measures capacity and speedup-vs-N
//!    is real rather than arrival-bound). Arrivals alternate vision-heavy
//!    and voice-only queries; policies at one replica count share paired
//!    arrival seeds across several trials.
//!    A separate routing head-to-head then runs the widest cluster *below*
//!    saturation (where routing can still steer into slack) on a straggler
//!    mix — one slowest query planted among every three fastest-third
//!    queries, period-resonant with the replica count so round-robin lands
//!    every straggler on the same replica. Least-sojourn vs round-robin is
//!    gated at the highest routing load on pooled-and-median p99 within a
//!    single-core scheduler-noise bound.
//!    Every output is checked bit-for-bit against the serial references
//!    (sharding and routing must never change an answer), the merged
//!    cluster telemetry must account for every query exactly once, and the
//!    speedups are restated against the paper's Table 8 accelerated
//!    design via `sirius_dcsim::ClusterComparison`.
//!
//! Usage: `bench_server [--queries N] [--workers W] [--seed S]`
//! (defaults: 100 arrivals per load point, 4 workers). JSON on stdout;
//! progress on stderr.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use sirius::error::SiriusError;
use sirius::pipeline::{Sirius, SiriusConfig, SiriusInput, SiriusResponse};
use sirius::prepare_input_set;
use sirius::profile::LatencyStats;
use sirius_accel::PlatformKind;
use sirius_dcsim::{
    homogeneous_throughput_improvement, CacheComparison, CachePoint, ClusterComparison,
    ClusterPoint, MeasuredPoint, Mm1, QueueComparison, ShedComparison, ShedPoint, StageMeasurement,
    TandemComparison,
};
use sirius_obs::metrics::{bucket_bounds, bucket_index};
use sirius_obs::{HistogramSnapshot, Snapshot};
use sirius_server::{
    BatchPolicy, CachePolicy, ClusterConfig, NetClient, NetConfig, NetServer, RoutePolicy,
    ServerConfig, SiriusCluster, SiriusServer, StreamPolicy, TenantClass, STAGES,
};
use sirius_speech::asr::AcousticModelKind;
use sirius_speech::features::SAMPLE_RATE;

const SWEEP_RHO: [f64; 4] = [0.2, 0.4, 0.6, 0.8];
/// Offered loads for the admission-policy head-to-head, straddling
/// saturation: deadline-aware admission should not matter much below
/// ρ ≈ 0.8 and must dominate above it.
const POLICY_RHO: [f64; 4] = [0.8, 0.9, 1.1, 1.5];
/// The policy sweep's SLO as a multiple of the zero-load mean service time
/// (a "responsive" bar in the spirit of the paper's latency targets).
const SLO_SERVICE_MULTIPLE: f64 = 8.0;
/// Queue depth of the policy-sweep servers; with the one in-service slot
/// this is the system capacity K of the M/M/1/K shed model.
const POLICY_QUEUE_DEPTH: usize = 16;

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Sleep-then-spin to an absolute deadline: open-loop arrivals must not
/// drift with scheduler latency.
fn wait_until(deadline: Instant) {
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let remaining = deadline - now;
        if remaining > Duration::from_micros(500) {
            std::thread::sleep(remaining - Duration::from_micros(200));
        } else {
            std::hint::spin_loop();
        }
    }
}

/// The response fields that must match the serial reference bit-for-bit.
fn payload(r: &SiriusResponse) -> (String, String, Option<String>) {
    (
        r.recognized.clone(),
        format!("{:?}", r.outcome),
        r.matched_venue.clone(),
    )
}

struct OpenLoopPoint {
    rho: f64,
    lambda: f64,
    offered: usize,
    /// Registry snapshot taken after the last completion, before shutdown.
    snapshot: Snapshot,
    /// Wall-clock seconds from first arrival to last completion (the
    /// tandem model's measurement window).
    wall: f64,
    /// Exact per-query sojourns from the tickets, for cross-checking the
    /// bucketed histogram.
    exact: LatencyStats,
}

/// Drives the runtime open-loop at arrival rate `lambda` with exponential
/// interarrival gaps. All statistics come from the runtime's own metrics
/// snapshot; exact ticket sojourns are kept only to cross-check it.
fn open_loop(
    sirius: &Arc<Sirius>,
    inputs: &[SiriusInput],
    lambda: f64,
    rho: f64,
    arrivals: usize,
    seed: u64,
) -> OpenLoopPoint {
    // One worker per stage: the tandem-of-single-servers layout the paper's
    // per-service M/M/1 modeling assumes. Queues deep enough that the sweep
    // never sheds (shedding would censor the latency distribution).
    let server = SiriusServer::start(
        Arc::clone(sirius),
        ServerConfig::default().with_queue_depth(arrivals.max(16)),
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut tickets = Vec::with_capacity(arrivals);
    let begun = Instant::now();
    let mut next = begun;
    for i in 0..arrivals {
        let gap = -(1.0 - rng.gen_range(0.0f64..1.0)).ln() / lambda;
        next += Duration::from_secs_f64(gap);
        wait_until(next);
        if let Ok(ticket) = server.submit(inputs[i % inputs.len()].clone()) {
            tickets.push(ticket);
        }
    }
    let sojourns: Vec<Duration> = tickets
        .into_iter()
        .filter_map(|t| t.wait().ok().map(|r| r.timing.total))
        .collect();
    let wall = begun.elapsed().as_secs_f64();
    let snapshot = server.metrics_snapshot();
    server.shutdown();
    OpenLoopPoint {
        rho,
        lambda,
        offered: arrivals,
        snapshot,
        wall,
        exact: LatencyStats::from_samples(&sojourns),
    }
}

impl OpenLoopPoint {
    fn sojourn(&self) -> &HistogramSnapshot {
        self.snapshot
            .histogram("sojourn_ns")
            .expect("runtime registers sojourn_ns")
    }

    fn shed(&self) -> u64 {
        self.snapshot.counter("admission.shed").unwrap_or(0)
    }

    /// Per-stage measurements from the runtime's own histograms, lined up
    /// against independent per-stage M/M/1 models and reconciled with the
    /// end-to-end sojourn.
    fn tandem(&self) -> TandemComparison {
        let stages: Vec<StageMeasurement> = STAGES
            .iter()
            .map(|stage| {
                let wait = self
                    .snapshot
                    .histogram(&format!("{stage}.queue_wait_ns"))
                    .expect("stage wait histogram");
                let service = self
                    .snapshot
                    .histogram(&format!("{stage}.service_ns"))
                    .expect("stage service histogram");
                StageMeasurement {
                    stage: (*stage).to_owned(),
                    completions: service.count,
                    mean_wait: wait.mean() / 1e9,
                    mean_service: service.mean() / 1e9,
                }
            })
            .collect();
        let sojourn = self.sojourn();
        TandemComparison::against(self.wall, sojourn.count, sojourn.mean() / 1e9, &stages)
    }

    /// Whether the bucketed p50/p95/p99 agree with the exact nearest-rank
    /// percentiles to within one bucket width. (The histogram and the
    /// tickets time the same queries through clocks a hair apart, so the
    /// tolerance is the exact value's bucket ± one neighbouring width.)
    fn percentiles_within_one_bucket(&self) -> bool {
        let h = self.sojourn();
        [
            (50.0, self.exact.p50),
            (95.0, self.exact.p95),
            (99.0, self.exact.p99),
        ]
        .iter()
        .all(|&(pct, exact)| {
            let exact_ns = exact.as_nanos() as u64;
            let (lo, hi) = bucket_bounds(bucket_index(exact_ns));
            let width = hi - lo + 1;
            let bucketed = h.percentile(pct);
            bucketed >= lo.saturating_sub(width) && bucketed <= hi.saturating_add(width)
        })
    }
}

/// One admission policy's showing at one offered load.
struct PolicyOutcome {
    admitted: u64,
    /// Sheds from a full admission queue (`Overloaded`).
    shed_full: u64,
    /// Sheds from the sojourn estimator (`DeadlineUnmeetable` at submit).
    shed_deadline: u64,
    /// Admitted jobs whose deadline passed while queued (dropped at
    /// dequeue, never serviced).
    expired: u64,
    completed: u64,
    /// Completions that met the SLO — the goodput numerator.
    within_slo: u64,
    /// First arrival to last completion, seconds.
    wall: f64,
    p99_ms: f64,
    outputs_match: bool,
    /// Whether the runtime's own ledger balanced: accepted = completed +
    /// failed, expiries all attributed to exactly one stage, and every
    /// accepted query either got ASR service or expired there — i.e. no
    /// stage spent service time on a dead job.
    accounting_balanced: bool,
}

impl PolicyOutcome {
    fn goodput(&self) -> f64 {
        self.within_slo as f64 / self.wall
    }

    fn json(&self) -> String {
        format!(
            "\"admitted\": {}, \"shed_full\": {}, \"shed_deadline\": {}, \"expired\": {}, \"completed\": {}, \"within_slo\": {}, \"goodput_qps\": {:.2}, \"p99_ms\": {:.3}",
            self.admitted,
            self.shed_full,
            self.shed_deadline,
            self.expired,
            self.completed,
            self.within_slo,
            self.goodput(),
            self.p99_ms
        )
    }
}

/// Drives one fresh single-worker runtime open-loop at rate `lambda` under
/// one admission policy: `admission_deadline = None` is plain shed-on-full,
/// `Some(slo)` stamps every submit with the SLO as its deadline. Goodput is
/// judged against the same `slo` either way so the two policies compare on
/// identical terms, and the paired caller reuses one `seed` per load point
/// so both see the same arrival process.
#[allow(clippy::too_many_arguments)]
fn policy_run(
    sirius: &Arc<Sirius>,
    inputs: &[SiriusInput],
    reference: &[(String, String, Option<String>)],
    lambda: f64,
    arrivals: usize,
    admission_deadline: Option<Duration>,
    slo: Duration,
    seed: u64,
) -> PolicyOutcome {
    let server = SiriusServer::start(
        Arc::clone(sirius),
        ServerConfig::with_workers(1).with_queue_depth(POLICY_QUEUE_DEPTH),
    );
    // Warm the per-stage service meters so the sojourn estimator starts
    // informed; both policies get the identical warmup for parity.
    for input in inputs {
        server.process_sync(input.clone()).expect("warmup query");
    }
    let warm = inputs.len() as u64;

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut tickets = Vec::with_capacity(arrivals);
    let mut shed_full = 0u64;
    let mut shed_deadline = 0u64;
    let begun = Instant::now();
    let mut next = begun;
    for i in 0..arrivals {
        let gap = -(1.0 - rng.gen_range(0.0f64..1.0)).ln() / lambda;
        next += Duration::from_secs_f64(gap);
        wait_until(next);
        let at = i % inputs.len();
        let submitted = match admission_deadline {
            Some(deadline) => server.submit_with_deadline(inputs[at].clone(), deadline),
            None => server.submit(inputs[at].clone()),
        };
        match submitted {
            Ok(ticket) => tickets.push((at, ticket)),
            Err(SiriusError::Overloaded { .. }) => shed_full += 1,
            Err(SiriusError::DeadlineUnmeetable { .. }) => shed_deadline += 1,
            Err(other) => panic!("unexpected admission error: {other}"),
        }
    }

    let admitted = tickets.len() as u64;
    let mut completed = 0u64;
    let mut within_slo = 0u64;
    let mut expired = 0u64;
    let mut outputs_match = true;
    let mut sojourns = Vec::new();
    for (at, ticket) in tickets {
        match ticket.wait() {
            Ok(response) => {
                completed += 1;
                if response.timing.total <= slo {
                    within_slo += 1;
                }
                sojourns.push(response.timing.total);
                if payload(&response) != reference[at] {
                    outputs_match = false;
                }
            }
            Err(SiriusError::DeadlineUnmeetable { .. }) => expired += 1,
            Err(other) => panic!("unexpected ticket error: {other}"),
        }
    }
    let wall = begun.elapsed().as_secs_f64();

    let snap = server.metrics_snapshot();
    let accepted = snap.counter("admission.accepted").unwrap_or(0);
    let stage_expired: u64 = STAGES
        .iter()
        .map(|s| snap.counter(&format!("{s}.expired")).unwrap_or(0))
        .sum();
    let asr_serviced = snap.histogram("asr.service_ns").map_or(0, |h| h.count);
    let accounting_balanced = accepted == admitted + warm
        && stage_expired == expired
        && asr_serviced + snap.counter("asr.expired").unwrap_or(0) == accepted
        && snap.counter("completed") == Some(completed + warm)
        && snap.counter("failed") == Some(expired);
    server.shutdown();

    PolicyOutcome {
        admitted,
        shed_full,
        shed_deadline,
        expired,
        completed,
        within_slo,
        wall,
        p99_ms: ms(LatencyStats::from_samples(&sojourns).p99),
        outputs_match,
        accounting_balanced,
    }
}

/// Offered loads for the batching sweep, relative to the *serial single-core
/// DNN* service rate: one load just under that capacity and two past it,
/// where cross-query batches actually form.
const BATCH_RHO: [f64; 3] = [0.8, 1.1, 1.5];
/// `(max_batch, max_delay_ms)` policy grid. `(1, 2)` is the unbatched
/// baseline (no collector is spawned).
const BATCH_GRID: [(usize, u64); 5] = [(1, 2), (4, 1), (4, 4), (8, 1), (8, 4)];

/// One batching policy's showing at one offered load.
struct BatchOutcome {
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    /// Blocks coalesced per GEMM flush (0s when no collector ran).
    batch_mean: f64,
    batch_p95: u64,
    batch_max: u64,
    flushes_full: u64,
    flushes_timeout: u64,
    outputs_match: bool,
    /// accepted = completed, no failures, and the flush census balances.
    accounting_balanced: bool,
}

/// Drives one fresh DNN-acoustic runtime open-loop at rate `lambda` under
/// one batching policy. The queue is deep enough that nothing sheds, so
/// every arrival's output is checked against the serial DNN reference.
#[allow(clippy::too_many_arguments)]
fn batch_run(
    sirius: &Arc<Sirius>,
    inputs: &[SiriusInput],
    reference: &[(String, String, Option<String>)],
    lambda: f64,
    arrivals: usize,
    workers: usize,
    policy: BatchPolicy,
    seed: u64,
) -> BatchOutcome {
    let mut config = ServerConfig::with_workers(workers)
        .with_queue_depth(arrivals.max(16))
        .with_batch_policy(policy);
    config.acoustic = AcousticModelKind::Dnn;
    let server = SiriusServer::start(Arc::clone(sirius), config);

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut tickets = Vec::with_capacity(arrivals);
    let begun = Instant::now();
    let mut next = begun;
    for i in 0..arrivals {
        let gap = -(1.0 - rng.gen_range(0.0f64..1.0)).ln() / lambda;
        next += Duration::from_secs_f64(gap);
        wait_until(next);
        let at = i % inputs.len();
        let ticket = server
            .submit(inputs[at].clone())
            .expect("deep queue admits every arrival");
        tickets.push((at, ticket));
    }
    let mut outputs_match = true;
    let mut completed = 0u64;
    for (at, ticket) in tickets {
        let response = ticket.wait().expect("query served");
        completed += 1;
        if payload(&response) != reference[at] {
            outputs_match = false;
        }
    }
    let wall = begun.elapsed().as_secs_f64();

    let snap = server.metrics_snapshot();
    let sojourn = snap.histogram("sojourn_ns").expect("sojourn histogram");
    let sizes = snap.histogram("asr.batch_size").expect("batch histogram");
    let flushes_full = snap.counter("asr.batch_flush_full").unwrap_or(0);
    let flushes_timeout = snap.counter("asr.batch_flush_timeout").unwrap_or(0);
    let accounting_balanced = snap.counter("admission.accepted") == Some(completed)
        && snap.counter("completed") == Some(completed)
        && snap.counter("failed") == Some(0)
        && sizes.count == flushes_full + flushes_timeout;
    server.shutdown();

    BatchOutcome {
        qps: completed as f64 / wall,
        p50_ms: sojourn.percentile(50.0) as f64 / 1e6,
        p99_ms: sojourn.percentile(99.0) as f64 / 1e6,
        batch_mean: sizes.mean(),
        batch_p95: sizes.percentile(95.0),
        batch_max: sizes.max,
        flushes_full,
        flushes_timeout,
        outputs_match,
        accounting_balanced,
    }
}

/// Offered loads for the streaming sweep, relative to the measured
/// streaming occupancy capacity (a streaming worker is occupied for the
/// paced audio-arrival window, not just the decode CPU time).
const STREAM_RHO: [f64; 3] = [0.2, 0.8, 1.1];
/// Ingestion chunk sizes swept, in milliseconds of audio.
const STREAM_CHUNKS_MS: [u64; 3] = [80, 160, 320];
/// Arrival pacing as a fraction of real time: 0.25× keeps the
/// decode-overlaps-arrival structure of live capture while the sweep
/// finishes in seconds rather than minutes.
const STREAM_PACING: f64 = 0.25;

fn stream_policy(chunk_ms: u64) -> StreamPolicy {
    StreamPolicy::new(Duration::from_millis(chunk_ms))
        .with_pacing(STREAM_PACING)
        .with_speculation()
}

/// One streaming policy point's showing at one offered load.
struct StreamOutcome {
    first_partial_p50_ms: f64,
    /// Sojourn measured from admission (includes the paced arrival window).
    from_submit: LatencyStats,
    /// Sojourn measured from the instant the query's last chunk was due —
    /// the latency a caller perceives after they stop speaking.
    from_end: LatencyStats,
    partials_per_query: f64,
    /// Confirmed speculations over reconciles (NaN-free: 0 when none ran).
    spec_hit_rate: f64,
    outputs_match: bool,
}

/// Measures the streaming occupancy capacity (queries/sec the pool
/// sustains) by timing a short closed warmup through a throwaway server
/// with the same policy: occupancy ≈ paced arrival window + decode tail.
fn stream_capacity(
    sirius: &Arc<Sirius>,
    inputs: &[SiriusInput],
    workers: usize,
    chunk_ms: u64,
) -> f64 {
    let server = SiriusServer::start(
        Arc::clone(sirius),
        ServerConfig::with_workers(workers).with_stream_policy(stream_policy(chunk_ms)),
    );
    let n = inputs.len().min(16);
    let mut occupancy = Duration::ZERO;
    for input in inputs.iter().take(n) {
        let response = server.process_sync(input.clone()).expect("warmup query");
        occupancy += response.timing.total;
    }
    server.shutdown();
    workers as f64 * n as f64 / occupancy.as_secs_f64()
}

/// Drives one fresh streaming GMM runtime open-loop at rate `lambda`. The
/// queue is deep enough that nothing sheds; every output is checked
/// against the serial reference, and per-query from-end sojourns subtract
/// the paced arrival window the query itself asked for.
#[allow(clippy::too_many_arguments)]
fn stream_run(
    sirius: &Arc<Sirius>,
    inputs: &[SiriusInput],
    reference: &[(String, String, Option<String>)],
    lambda: f64,
    arrivals: usize,
    workers: usize,
    chunk_ms: u64,
    seed: u64,
) -> StreamOutcome {
    let mut config = ServerConfig::with_workers(workers)
        .with_queue_depth(arrivals.max(16))
        .with_stream_policy(stream_policy(chunk_ms));
    config.acoustic = AcousticModelKind::Gmm;
    let server = SiriusServer::start(Arc::clone(sirius), config);

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut tickets = Vec::with_capacity(arrivals);
    let begun = Instant::now();
    let mut next = begun;
    for i in 0..arrivals {
        let gap = -(1.0 - rng.gen_range(0.0f64..1.0)).ln() / lambda;
        next += Duration::from_secs_f64(gap);
        wait_until(next);
        let at = i % inputs.len();
        let ticket = server
            .submit(inputs[at].clone())
            .expect("deep queue admits every arrival");
        tickets.push((at, ticket));
    }
    let mut outputs_match = true;
    let mut from_submit = Vec::new();
    let mut from_end = Vec::new();
    for (at, ticket) in tickets {
        let response = ticket.wait().expect("query served");
        if payload(&response) != reference[at] {
            outputs_match = false;
        }
        let total = response.timing.total;
        let arrival_window = Duration::from_secs_f64(
            STREAM_PACING * inputs[at].audio.len() as f64 / SAMPLE_RATE as f64,
        );
        from_submit.push(total);
        from_end.push(total.saturating_sub(arrival_window));
    }

    let snap = server.metrics_snapshot();
    let completed = from_submit.len().max(1) as f64;
    let partials = snap.counter("asr.partials_emitted").unwrap_or(0) as f64;
    let hits = snap.counter("asr.spec_hit").unwrap_or(0) as f64;
    let misses = snap.counter("asr.spec_miss").unwrap_or(0) as f64;
    let first_partial = snap
        .histogram("e2e.first_partial_ns")
        .expect("streaming runtime registers first-partial");
    server.shutdown();

    StreamOutcome {
        first_partial_p50_ms: first_partial.percentile(50.0) as f64 / 1e6,
        from_submit: LatencyStats::from_samples(&from_submit),
        from_end: LatencyStats::from_samples(&from_end),
        partials_per_query: partials / completed,
        spec_hit_rate: if hits + misses > 0.0 {
            hits / (hits + misses)
        } else {
            0.0
        },
        outputs_match,
    }
}

/// Closed-loop saturation: `clients` threads process `total` queries as
/// fast as the runtime admits them. Returns (qps, outputs_match_serial).
fn saturate(
    sirius: &Arc<Sirius>,
    inputs: &[SiriusInput],
    reference: &[(String, String, Option<String>)],
    workers: usize,
    clients: usize,
    total: usize,
) -> (f64, bool) {
    let server = SiriusServer::start(
        Arc::clone(sirius),
        ServerConfig::with_workers(workers).with_queue_depth(64),
    );
    let next = AtomicUsize::new(0);
    let all_match = AtomicBool::new(true);
    let t = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            let server = &server;
            let next = &next;
            let all_match = &all_match;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let at = i % inputs.len();
                match server.process_sync(inputs[at].clone()) {
                    Ok(response) => {
                        if payload(&response) != reference[at] {
                            all_match.store(false, Ordering::Relaxed);
                        }
                    }
                    // Closed-loop clients retry shed queries.
                    Err(_) => {
                        next.fetch_sub(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let elapsed = t.elapsed().as_secs_f64();
    server.shutdown();
    (total as f64 / elapsed, all_match.load(Ordering::Relaxed))
}

/// Replica counts of the cluster sweep. Must include 1: every policy's
/// speedup-vs-N is normalized against its own single-replica point.
const CLUSTER_REPLICAS: [u32; 3] = [1, 2, 4];
/// Offered load of each cluster point as a multiple of that replica
/// count's *measured* capacity (a deep-overload round-robin probe run
/// first). Past saturation on purpose: with queues deep enough never to
/// shed, the open-loop drain rate measures the cluster's capacity (an
/// under-saturated point would just measure its own arrival rate and fake
/// perfectly linear scaling), and the standing backlog is what separates
/// backlog-aware routing from blind round-robin. Anchoring on measured
/// capacity — not N × the single-replica rate — keeps the overload depth
/// matched across N even when the replicas contend for the same few cores.
const CLUSTER_RHO: f64 = 1.25;
/// Paired trials per cluster point; reported p50/p99 are medians over the
/// trials (single-seed tail comparisons on a loaded machine are noise).
const CLUSTER_TRIALS: usize = 3;
/// Offered loads of the routing head-to-head, as fractions of the
/// straggler mix's serial service rate. Sub-saturation on purpose: past
/// saturation every worker thread is always busy, the OS processor-shares
/// the core across replicas, and drain — hence tail latency — equalizes no
/// matter how arrivals were routed. Queue-aware routing can only separate
/// from blind routing while there is still slack to steer into.
const ROUTING_RHO: [f64; 2] = [0.5, 0.75];
/// Trials per routing point; the compared p99s pool the sojourn samples of
/// all trials (a 1-in-100 quantile needs more than one 100-arrival window).
const ROUTING_TRIALS: usize = 5;
/// Noise bound for the least-sojourn vs round-robin gate. On a single
/// shared core the two policies sit within scheduler noise of each other
/// (pooled-p99 ratios ranged 0.45-1.39 over eleven validation runs of this
/// exact comparison), so the gate asserts non-inferiority within this
/// bound rather than a strict win that would flake on every loaded CI box.
const ROUTING_TOL: f64 = 1.5;

struct ClusterOutcome {
    qps: f64,
    stats: LatencyStats,
    outputs_match: bool,
    accounting_balanced: bool,
    /// Queries routed to each replica (warmup excluded).
    served_by: Vec<u64>,
}

/// Drives an N-replica sharded cluster open-loop at arrival rate `lambda`
/// under one routing policy; arrival `i` carries `inputs[order[i]]`. Every
/// output is checked against the serial reference, and the merged cluster
/// telemetry is checked to account for every query exactly once across
/// the replicas.
#[allow(clippy::too_many_arguments)]
fn cluster_run(
    sirius: &Arc<Sirius>,
    inputs: &[SiriusInput],
    order: &[usize],
    reference: &[(String, String, Option<String>)],
    replicas: u32,
    route: RoutePolicy,
    lambda: f64,
    arrivals: usize,
    seed: u64,
) -> ClusterOutcome {
    let cluster = SiriusCluster::start(
        sirius,
        ClusterConfig::new(replicas)
            .with_route(route)
            .with_server(ServerConfig::default().with_queue_depth(arrivals.max(16))),
    )
    .expect("cluster start");
    // Warm every stage meter on every replica before timing starts. An
    // image-bearing question traverses asr -> classify -> imm -> qa; a
    // voice-only query covers the short path. The coverage matters: a
    // replica whose warmup skipped a stage keeps that meter cold, the
    // cold meter contributes nothing to `expected_sojourn`, and the
    // least-sojourn router then herds traffic onto the replica it
    // chronically underestimates. Identical warmup under every policy
    // keeps the paired comparison fair.
    let viq = inputs
        .iter()
        .find(|i| i.image.is_some())
        .expect("input set has image queries");
    let voice = inputs
        .iter()
        .find(|i| i.image.is_none())
        .expect("input set has voice-only queries");
    let warm = 3 * cluster.len();
    for server in cluster.replicas() {
        for w in [viq, viq, voice] {
            server.process_sync(w.clone()).expect("cluster warmup");
        }
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut tickets = Vec::with_capacity(arrivals);
    let begun = Instant::now();
    let mut next = begun;
    for i in 0..arrivals {
        let gap = -(1.0 - rng.gen_range(0.0f64..1.0)).ln() / lambda;
        next += Duration::from_secs_f64(gap);
        wait_until(next);
        let at = order[i % order.len()];
        let ticket = cluster
            .submit(inputs[at].clone())
            .expect("queues are deep enough never to shed");
        tickets.push((at, ticket));
    }
    let mut served_by = vec![0u64; cluster.len()];
    let mut outputs_match = true;
    let mut sojourns = Vec::with_capacity(arrivals);
    for (at, ticket) in tickets {
        served_by[ticket.replica()] += 1;
        let response = ticket.wait().expect("admitted queries complete");
        if payload(&response) != reference[at] {
            outputs_match = false;
        }
        sojourns.push(response.timing.total);
    }
    let wall = begun.elapsed().as_secs_f64();
    let snapshot = cluster.metrics_snapshot();
    let expected = (arrivals + warm) as u64;
    let accounting_balanced = cluster.merged_counter(&snapshot, "completed") == expected
        && cluster.merged_counter(&snapshot, "failed") == 0
        && cluster.merged_histogram(&snapshot, "sojourn_ns").count == expected
        && served_by.iter().sum::<u64>() == arrivals as u64;
    cluster.shutdown();
    ClusterOutcome {
        qps: arrivals as f64 / wall,
        stats: LatencyStats::from_samples(&sojourns),
        outputs_match,
        accounting_balanced,
        served_by,
    }
}

/// Offered loads of the cache/tenant sweep, relative to the serial
/// full-pipeline rate μ: one point below saturation and two past it, where
/// weighted admission has to choose whom to shed and the result cache's
/// capacity multiplication actually shows up as throughput.
const CACHE_RHO: [f64; 3] = [0.8, 1.1, 1.5];
/// Result-cache capacities swept; 0 disables the cache entirely. The small
/// capacity forces LRU churn against the Zipf head (an intermediate hit
/// ratio); the large one holds the whole 42-query corpus (hit ratio near
/// one once warm). Points at one load share one arrival process, so the
/// capacity axis is a paired comparison.
const CACHE_CAPACITIES: [usize; 3] = [0, 8, 1024];
/// Zipf exponent of each tenant's query popularity: heavy-tailed, most
/// arrivals concentrated on each class's few head queries.
const ZIPF_EXPONENT: f64 = 1.1;
/// Diurnal arrival modulation `λ(t) = λ0 · (1 + A·sin(2πt/T))`: the sweep
/// compresses a day's swing into a few seconds so every point sees both
/// the peak and the trough of its offered load.
const DIURNAL_AMPLITUDE: f64 = 0.5;
/// Synthetic "day" length in seconds of scheduled arrival time.
const DIURNAL_PERIOD_S: f64 = 4.0;
/// The tenant classes: `(name, priority, slo as a multiple of the serial
/// mean service time, admission weight, share of arrivals)`. Premium pays
/// for the full weight (its admission budget is its whole SLO); best
/// effort gets a quarter of its own SLO as budget and is shed first.
const TENANT_SPEC: [(&str, u8, f64, u32, f64); 3] = [
    ("premium", 0, 8.0, 4, 0.30),
    ("standard", 1, 12.0, 2, 0.30),
    ("best_effort", 2, 16.0, 1, 0.40),
];

/// Heavy-tailed, diurnal, multi-tenant arrival generator. Every arrival
/// draws a tenant class by traffic share, then a query by a per-class Zipf
/// over the corpus — each class gets its own corpus permutation, so the
/// classes' popularity heads land on *different* queries and the shared
/// result cache has to hold all three working sets. Interarrival gaps are
/// exponential at the instantaneous diurnal rate `λ0·(1 + A·sin(2πt/T))`,
/// with `t` the scheduled (not wall-clock) arrival time so the process is
/// reproducible from its seed alone.
struct TenantGen {
    rng: ChaCha8Rng,
    /// Per-class permutation of query indices: rank r of class c is query
    /// `perms[c][r]`.
    perms: Vec<Vec<usize>>,
    /// Zipf CDF over corpus ranks (shared by every class).
    rank_cdf: Vec<f64>,
    /// CDF over classes by traffic share.
    class_cdf: Vec<f64>,
    /// Scheduled arrival-time offset in seconds (diurnal phase).
    t: f64,
    lambda0: f64,
}

impl TenantGen {
    fn new(seed: u64, corpus: usize, lambda0: f64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let weights: Vec<f64> = (1..=corpus)
            .map(|rank| (rank as f64).powf(-ZIPF_EXPONENT))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let rank_cdf: Vec<f64> = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        let perms: Vec<Vec<usize>> = TENANT_SPEC
            .iter()
            .map(|_| {
                let mut p: Vec<usize> = (0..corpus).collect();
                for i in (1..corpus).rev() {
                    p.swap(i, rng.gen_range(0..=i));
                }
                p
            })
            .collect();
        let mut acc = 0.0;
        let class_cdf: Vec<f64> = TENANT_SPEC
            .iter()
            .map(|(.., share)| {
                acc += share;
                acc
            })
            .collect();
        Self {
            rng,
            perms,
            rank_cdf,
            class_cdf,
            t: 0.0,
            lambda0,
        }
    }

    /// Next arrival: `(gap to wait, class index, query index)`.
    fn next(&mut self) -> (Duration, usize, usize) {
        let u = self.rng.gen_range(0.0f64..1.0);
        let rate = self.lambda0
            * (1.0
                + DIURNAL_AMPLITUDE
                    * (2.0 * std::f64::consts::PI * self.t / DIURNAL_PERIOD_S).sin());
        let gap = -(1.0 - u).ln() / rate;
        self.t += gap;
        let c = self
            .class_cdf
            .partition_point(|&cdf| cdf < self.rng.gen_range(0.0f64..1.0))
            .min(TENANT_SPEC.len() - 1);
        let rank = self
            .rank_cdf
            .partition_point(|&cdf| cdf < self.rng.gen_range(0.0f64..1.0))
            .min(self.rank_cdf.len() - 1);
        (Duration::from_secs_f64(gap), c, self.perms[c][rank])
    }
}

/// One tenant class's showing at one cache-sweep point.
#[derive(Default)]
struct ClassOutcome {
    admitted: u64,
    shed_deadline: u64,
    shed_full: u64,
    expired: u64,
    completed: u64,
    within_slo: u64,
    p99_ms: f64,
}

impl ClassOutcome {
    fn offered(&self) -> u64 {
        self.admitted + self.shed_deadline + self.shed_full
    }

    /// Fraction of this class's offered queries that were never served
    /// (shed at admission or expired in queue).
    fn unserved_fraction(&self) -> f64 {
        if self.offered() == 0 {
            return 0.0;
        }
        (self.shed_deadline + self.shed_full + self.expired) as f64 / self.offered() as f64
    }
}

/// One cache-sweep operating point.
struct CacheOutcome {
    qps: f64,
    hit_ratio: f64,
    hits: u64,
    lookups: u64,
    mean_sojourn_ms: f64,
    p99_ms: f64,
    /// Mean ASR service time over the run, ms — the dominant cost of a
    /// cache hit (hits skip every later stage).
    hit_cost_ms: f64,
    /// Per class, indexed as `TENANT_SPEC`.
    classes: Vec<ClassOutcome>,
    outputs_match: bool,
    accounting_balanced: bool,
}

/// Drives one fresh single-worker runtime open-loop under the multi-tenant
/// generator at base rate `lambda`, with the result cache at `capacity`
/// entries (0 = disabled). Meters and cache are warmed with one corpus
/// pass, then the caches are invalidated so the measured hit ratio comes
/// from measured traffic only (and the O(1) generation-bump invalidation
/// is exercised on a live server).
#[allow(clippy::too_many_arguments)]
fn cache_run(
    sirius: &Arc<Sirius>,
    inputs: &[SiriusInput],
    reference: &[(String, String, Option<String>)],
    mean_service: f64,
    lambda: f64,
    arrivals: usize,
    capacity: usize,
    seed: u64,
) -> CacheOutcome {
    let tenants: Vec<TenantClass> = TENANT_SPEC
        .iter()
        .map(|&(name, priority, slo_mult, weight, _)| {
            TenantClass::new(
                name,
                priority,
                Duration::from_secs_f64(slo_mult * mean_service),
                weight,
            )
        })
        .collect();
    let slos: Vec<Duration> = tenants.iter().map(|t| t.slo).collect();
    let mut config = ServerConfig::with_workers(1)
        .with_queue_depth(POLICY_QUEUE_DEPTH)
        .with_tenant_classes(tenants);
    if capacity > 0 {
        config = config.with_cache_policy(CachePolicy::enabled().with_capacity(capacity));
    }
    let server = SiriusServer::start(Arc::clone(sirius), config);
    for input in inputs {
        server.process_sync(input.clone()).expect("warmup query");
    }
    server.invalidate_result_caches();
    let warm = inputs.len() as u64;
    let (base_hits, base_lookups) = server.caches().map_or((0, 0), |c| c.totals());

    let mut gen = TenantGen::new(seed, inputs.len(), lambda);
    let mut tickets = Vec::with_capacity(arrivals);
    let mut classes: Vec<ClassOutcome> = TENANT_SPEC
        .iter()
        .map(|_| ClassOutcome::default())
        .collect();
    let begun = Instant::now();
    let mut next = begun;
    for _ in 0..arrivals {
        let (gap, c, q) = gen.next();
        next += gap;
        wait_until(next);
        match server.submit_classed(inputs[q].clone(), TENANT_SPEC[c].0) {
            Ok(ticket) => {
                classes[c].admitted += 1;
                tickets.push((c, q, ticket));
            }
            Err(SiriusError::DeadlineUnmeetable { .. }) => classes[c].shed_deadline += 1,
            Err(SiriusError::Overloaded { .. }) => classes[c].shed_full += 1,
            Err(other) => panic!("unexpected admission error: {other}"),
        }
    }
    let mut outputs_match = true;
    let mut sojourns: Vec<Vec<Duration>> = TENANT_SPEC.iter().map(|_| Vec::new()).collect();
    for (c, q, ticket) in tickets {
        match ticket.wait() {
            Ok(response) => {
                classes[c].completed += 1;
                if response.timing.total <= slos[c] {
                    classes[c].within_slo += 1;
                }
                if payload(&response) != reference[q] {
                    outputs_match = false;
                }
                sojourns[c].push(response.timing.total);
            }
            Err(SiriusError::DeadlineUnmeetable { .. }) => classes[c].expired += 1,
            Err(other) => panic!("unexpected ticket error: {other}"),
        }
    }
    let wall = begun.elapsed().as_secs_f64();
    for (c, outcome) in classes.iter_mut().enumerate() {
        outcome.p99_ms = ms(LatencyStats::from_samples(&sojourns[c]).p99);
    }

    let snap = server.metrics_snapshot();
    // The per-class ledger must agree with the harness's own counts:
    // accepted = admitted, completed = completed, failed = expired, and
    // the in-flight gauge is back to zero.
    let mut accounting_balanced = true;
    for (i, (name, ..)) in TENANT_SPEC.iter().enumerate() {
        let counter = |leaf: &str| snap.counter(&format!("tenant.{name}.{leaf}"));
        let expected: [(&str, Option<u64>, u64); 4] = [
            ("accepted", counter("accepted"), classes[i].admitted),
            (
                "shed_deadline",
                counter("shed_deadline"),
                classes[i].shed_deadline,
            ),
            ("completed", counter("completed"), classes[i].completed),
            ("failed", counter("failed"), classes[i].expired),
        ];
        for (leaf, got, want) in expected {
            if got != Some(want) {
                eprintln!(
                    "cache accounting: tenant.{name}.{leaf} = {got:?}, harness counted {want}"
                );
                accounting_balanced = false;
            }
        }
        let in_flight = snap.gauge(&format!("tenant.{name}.in_flight"));
        if in_flight != Some(0) {
            eprintln!("cache accounting: tenant.{name}.in_flight = {in_flight:?}, expected 0");
            accounting_balanced = false;
        }
    }
    let completed_total: u64 = classes.iter().map(|c| c.completed).sum();
    let global = snap.counter("completed");
    if global != Some(completed_total + warm) {
        eprintln!(
            "cache accounting: completed = {global:?}, harness counted {completed_total} + {warm} warm"
        );
        accounting_balanced = false;
    }
    let (hits, lookups) = server.caches().map_or((0, 0), |c| c.totals());
    let (hits, lookups) = (hits - base_hits, lookups - base_lookups);
    let all: Vec<Duration> = sojourns.into_iter().flatten().collect();
    let stats = LatencyStats::from_samples(&all);
    let hit_cost_ms = snap
        .histogram("asr.service_ns")
        .map_or(0.0, |h| h.mean() / 1e6);
    server.shutdown();
    CacheOutcome {
        qps: completed_total as f64 / wall,
        hit_ratio: if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        },
        hits,
        lookups,
        mean_sojourn_ms: ms(stats.mean),
        p99_ms: ms(stats.p99),
        hit_cost_ms,
        classes,
        outputs_match,
        accounting_balanced,
    }
}

/// Replica counts of the cache-affinity head-to-head.
const AFFINITY_REPLICAS: [u32; 2] = [2, 4];
/// Noise allowance on the affinity gate: consistent-hash must aggregate at
/// least this much more hit ratio than round-robin (in-flight duplicates
/// miss under both policies, but which duplicates overlap is timing).
const AFFINITY_MARGIN: f64 = 0.02;

/// Drives an N-replica cluster cold-start under a Zipf arrival order and
/// measures the aggregate result-cache hit ratio: consistent-hash routing
/// pins each query to one replica (one cold miss per distinct query);
/// round-robin smears each query across all N (up to N cold misses each).
#[allow(clippy::too_many_arguments)]
fn affinity_run(
    sirius: &Arc<Sirius>,
    inputs: &[SiriusInput],
    order: &[usize],
    reference: &[(String, String, Option<String>)],
    replicas: u32,
    route: RoutePolicy,
    lambda: f64,
    arrivals: usize,
    seed: u64,
) -> (f64, bool) {
    let cluster = SiriusCluster::start(
        sirius,
        ClusterConfig::new(replicas).with_route(route).with_server(
            ServerConfig::default()
                .with_queue_depth(arrivals.max(16))
                .with_cache_policy(CachePolicy::enabled()),
        ),
    )
    .expect("cluster start");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut tickets = Vec::with_capacity(arrivals);
    let begun = Instant::now();
    let mut next = begun;
    for i in 0..arrivals {
        let gap = -(1.0 - rng.gen_range(0.0f64..1.0)).ln() / lambda;
        next += Duration::from_secs_f64(gap);
        wait_until(next);
        let at = order[i % order.len()];
        let ticket = cluster
            .submit(inputs[at].clone())
            .expect("queues are deep enough never to shed");
        tickets.push((at, ticket));
    }
    let mut outputs_match = true;
    for (at, ticket) in tickets {
        let response = ticket.wait().expect("admitted queries complete");
        if payload(&response) != reference[at] {
            outputs_match = false;
        }
    }
    let snapshot = cluster.metrics_snapshot();
    let (hits, lookups) = cluster.cache_totals(&snapshot);
    cluster.shutdown();
    (
        if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        },
        outputs_match,
    )
}

/// Closed-loop client counts for the loopback network sweep.
const NET_CLIENTS: [usize; 4] = [1, 2, 4, 8];
/// Replicas behind the network front-end.
const NET_REPLICAS: u32 = 2;
/// Tenant classes the loopback clients rotate through.
const NET_TENANTS: [&str; 3] = ["premium", "standard", "best_effort"];

/// One closed-loop loopback point against the TCP front-end.
struct NetPoint {
    clients: usize,
    qps: f64,
    stats: LatencyStats,
    /// Every remote answer matched the serial reference bit-for-bit.
    outputs_match: bool,
    /// `net.frames_in == net.frames_out == queries` and no protocol
    /// errors or handler panics.
    frames_balanced: bool,
    /// Per-tenant `accepted == completed` across replicas, and the class
    /// totals sum to the queries served.
    ledger_balanced: bool,
    /// `GET /metrics` on the same socket returned 200 with both replica
    /// and front-end series present.
    scrape_ok: bool,
}

/// Drives the network front-end closed-loop over loopback: `clients` TCP
/// connections, each submitting its share of `total` queries (rotating
/// tenant classes) as fast as answers return. Everything crosses the real
/// wire — framing, admission, answers, typed errors, the metrics scrape.
fn net_point(
    sirius: &Arc<Sirius>,
    inputs: &[SiriusInput],
    reference: &[(String, String, Option<String>)],
    clients: usize,
    total: usize,
    workers: usize,
) -> NetPoint {
    // Hour-scale SLOs: admission never sheds, so every query measures the
    // full remote round-trip.
    let slo = Duration::from_secs(3600);
    let classes = vec![
        TenantClass::new("premium", 2, slo, 3),
        TenantClass::new("standard", 1, slo, 2),
        TenantClass::new("best_effort", 0, slo, 1),
    ];
    let cluster = SiriusCluster::start(
        sirius,
        ClusterConfig::new(NET_REPLICAS)
            .with_route(RoutePolicy::RoundRobin)
            .with_server(
                ServerConfig::with_workers(workers)
                    .with_queue_depth(total.max(16))
                    .with_tenant_classes(classes),
            ),
    )
    .expect("cluster starts");
    let net = NetServer::serve(cluster, "127.0.0.1:0", NetConfig::default())
        .expect("loopback listener binds");
    let addr = net.local_addr();

    let outputs_match = AtomicBool::new(true);
    let mut latencies: Vec<Duration> = Vec::with_capacity(total);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let outputs_match = &outputs_match;
                scope.spawn(move || {
                    let mut client = NetClient::connect(addr).expect("loopback connect");
                    let mut lat = Vec::new();
                    let mut i = c;
                    while i < total {
                        let q = i % inputs.len();
                        let class = NET_TENANTS[q % NET_TENANTS.len()];
                        let t = Instant::now();
                        let r = client
                            .submit(&inputs[q], class, None)
                            .expect("loopback query served");
                        lat.push(t.elapsed());
                        if payload(&r) != reference[q] {
                            outputs_match.store(false, Ordering::Relaxed);
                        }
                        i += clients;
                    }
                    lat
                })
            })
            .collect();
        for handle in handles {
            latencies.extend(handle.join().expect("client thread"));
        }
    });
    let wall = t0.elapsed().as_secs_f64();

    let scrape_ok = matches!(
        sirius_server::http_get(addr, "/metrics"),
        Ok((200, body)) if body.contains("net_frames_in") && body.contains("replica0_")
    );
    let snapshot = net.cluster().metrics_snapshot();
    let frames_balanced = snapshot.counter("net.frames_in") == Some(total as u64)
        && snapshot.counter("net.frames_out") == Some(total as u64)
        && snapshot.counter("net.errors_protocol") == Some(0)
        && snapshot.counter("net.handler_panics") == Some(0);
    let mut ledger_balanced = true;
    let mut accepted_total = 0u64;
    for class in NET_TENANTS {
        let accepted = net
            .cluster()
            .merged_counter(&snapshot, &format!("tenant.{class}.accepted"));
        let completed = net
            .cluster()
            .merged_counter(&snapshot, &format!("tenant.{class}.completed"));
        ledger_balanced &= accepted == completed;
        accepted_total += accepted;
    }
    ledger_balanced &= accepted_total == total as u64;
    net.shutdown();

    NetPoint {
        clients,
        qps: total as f64 / wall,
        stats: LatencyStats::from_samples(&latencies),
        outputs_match: outputs_match.load(Ordering::Relaxed),
        frames_balanced,
        ledger_balanced,
        scrape_ok,
    }
}

fn stats_json(stats: &LatencyStats) -> String {
    format!(
        "\"mean_ms\": {:.3}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}",
        ms(stats.mean),
        ms(stats.p50),
        ms(stats.p95),
        ms(stats.p99)
    )
}

fn hist_json(h: &HistogramSnapshot) -> String {
    format!(
        "\"mean_ms\": {:.3}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}",
        h.mean() / 1e6,
        h.percentile(50.0) as f64 / 1e6,
        h.percentile(95.0) as f64 / 1e6,
        h.percentile(99.0) as f64 / 1e6
    )
}

fn opt(e: Option<f64>) -> String {
    e.map_or("null".to_owned(), |e| format!("{e:.3}"))
}

fn main() {
    let mut arrivals = 100usize;
    let mut workers = 4usize;
    let mut seed = 0x51_A7E5u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> u64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs a positive integer"))
        };
        match arg.as_str() {
            "--queries" => arrivals = take("--queries") as usize,
            "--workers" => workers = take("--workers") as usize,
            "--seed" => seed = take("--seed"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_server [--queries N] [--workers W] [--seed S]");
                std::process::exit(2);
            }
        }
    }
    assert!(arrivals >= 10, "--queries must be at least 10");
    assert!(workers >= 1, "--workers must be at least 1");

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    eprintln!("building Sirius (trains all models)...");
    let sirius = Arc::new(Sirius::build(SiriusConfig::default()));
    let prepared = prepare_input_set(&sirius, 4242);
    let inputs: Vec<SiriusInput> = prepared.iter().map(|p| p.input()).collect();

    // Warm caches and capture the serial reference outputs.
    let reference: Vec<_> = inputs
        .iter()
        .map(|input| payload(&sirius.process(input)))
        .collect();

    eprintln!("serial baseline over {} queries...", inputs.len());
    let t = Instant::now();
    let serial_latencies: Vec<Duration> = inputs
        .iter()
        .map(|input| sirius.process(input).timing.total)
        .collect();
    let serial_wall = t.elapsed().as_secs_f64();
    let serial_stats = LatencyStats::from_samples(&serial_latencies);
    let serial_qps = inputs.len() as f64 / serial_wall;
    let mean_service = serial_wall / inputs.len() as f64;
    let mu = 1.0 / mean_service;

    let mut points = Vec::new();
    for (i, &rho) in SWEEP_RHO.iter().enumerate() {
        let lambda = rho * mu;
        eprintln!("open-loop sweep: rho={rho:.1} lambda={lambda:.1}/s ({arrivals} arrivals)...");
        points.push(open_loop(
            &sirius,
            &inputs,
            lambda,
            rho,
            arrivals,
            seed.wrapping_add(i as u64),
        ));
    }
    let comparison = QueueComparison::against_service_time(
        mean_service,
        &points
            .iter()
            .map(|p| MeasuredPoint {
                lambda: p.lambda,
                mean_latency: p.sojourn().mean() / 1e9,
            })
            .collect::<Vec<_>>(),
    );

    let slo = Duration::from_secs_f64(SLO_SERVICE_MULTIPLE * mean_service);
    let policy_arrivals = arrivals.max(150);
    let mut policy_rows = Vec::new();
    for (i, &rho) in POLICY_RHO.iter().enumerate() {
        let lambda = rho * mu;
        let pair_seed = seed.wrapping_add(0x900 + i as u64);
        eprintln!(
            "policy sweep: rho={rho:.1} lambda={lambda:.1}/s ({policy_arrivals} arrivals) shed-on-full..."
        );
        let shed_on_full = policy_run(
            &sirius,
            &inputs,
            &reference,
            lambda,
            policy_arrivals,
            None,
            slo,
            pair_seed,
        );
        eprintln!("policy sweep: rho={rho:.1} deadline-aware...");
        let deadline_aware = policy_run(
            &sirius,
            &inputs,
            &reference,
            lambda,
            policy_arrivals,
            Some(slo),
            slo,
            pair_seed,
        );
        policy_rows.push((rho, shed_on_full, deadline_aware));
    }
    let shed_points: Vec<ShedPoint> = policy_rows
        .iter()
        .map(|(rho, shed_on_full, _)| ShedPoint {
            rho: *rho,
            capacity: POLICY_QUEUE_DEPTH + 1,
            offered: policy_arrivals as u64,
            shed: shed_on_full.shed_full,
        })
        .collect();
    let shed_cmp = ShedComparison::against(&shed_points);
    let deadline_beats_shed = policy_rows
        .iter()
        .filter(|(rho, ..)| *rho >= 0.9)
        .all(|(_, shed_on_full, deadline_aware)| deadline_aware.goodput() > shed_on_full.goodput());
    let policy_outputs_match = policy_rows
        .iter()
        .all(|(_, a, b)| a.outputs_match && b.outputs_match);
    let policy_accounting = policy_rows
        .iter()
        .all(|(_, a, b)| a.accounting_balanced && b.accounting_balanced);

    // Batching sweep: DNN acoustic — the model with a block GEMM to batch.
    // All arrival rates are relative to the *serial single-core* DNN
    // service rate; the grid points at one load share one arrival process
    // so policies compare paired.
    eprintln!("serial DNN baseline over {} queries...", inputs.len());
    let dnn_reference: Vec<_> = inputs
        .iter()
        .map(|input| payload(&sirius.process_with(input, AcousticModelKind::Dnn)))
        .collect();
    let t = Instant::now();
    for input in &inputs {
        let _ = sirius.process_with(input, AcousticModelKind::Dnn);
    }
    let dnn_mu = inputs.len() as f64 / t.elapsed().as_secs_f64();
    let mut batch_rows = Vec::new();
    for (i, &rho) in BATCH_RHO.iter().enumerate() {
        let lambda = rho * dnn_mu;
        let pair_seed = seed.wrapping_add(0xBA7C + i as u64);
        for &(max_batch, delay_ms) in BATCH_GRID.iter() {
            eprintln!(
                "batch sweep: rho={rho:.1} lambda={lambda:.1}/s max_batch={max_batch} max_delay={delay_ms}ms ({arrivals} arrivals)..."
            );
            let outcome = batch_run(
                &sirius,
                &inputs,
                &dnn_reference,
                lambda,
                arrivals,
                workers,
                BatchPolicy::new(max_batch, Duration::from_millis(delay_ms)),
                pair_seed,
            );
            batch_rows.push((rho, max_batch, delay_ms, outcome));
        }
    }
    let batch_outputs_match = batch_rows.iter().all(|(.., o)| o.outputs_match);
    let batch_accounting = batch_rows.iter().all(|(.., o)| o.accounting_balanced);

    // Streaming sweep: GMM acoustic with speculative downstream
    // pipelining, audio paced in at STREAM_PACING× real time. Capacity is
    // occupancy-bound (a worker holds a query for its whole paced arrival
    // window), so it is measured per chunk size with a closed warmup.
    let stream_arrivals = arrivals.min(48);
    let mut stream_rows = Vec::new();
    for (ci, &chunk_ms) in STREAM_CHUNKS_MS.iter().enumerate() {
        let stream_mu = stream_capacity(&sirius, &inputs, workers, chunk_ms);
        for (ri, &rho) in STREAM_RHO.iter().enumerate() {
            let lambda = rho * stream_mu;
            eprintln!(
                "streaming sweep: chunk={chunk_ms}ms rho={rho:.1} lambda={lambda:.1}/s ({stream_arrivals} arrivals)..."
            );
            let outcome = stream_run(
                &sirius,
                &inputs,
                &reference,
                lambda,
                stream_arrivals,
                workers,
                chunk_ms,
                seed.wrapping_add(0x57_2EA0 + (ci * STREAM_RHO.len() + ri) as u64),
            );
            stream_rows.push((chunk_ms, rho, lambda, outcome));
        }
    }
    let stream_outputs_match = stream_rows.iter().all(|(.., o)| o.outputs_match);
    // The streaming win: once decode overlaps the paced arrival, the
    // latency left after the speaker stops must undercut the serial
    // sum-of-stages floor whenever the pool is not oversubscribed.
    let stream_below_floor = stream_rows
        .iter()
        .filter(|(_, rho, ..)| *rho <= 0.8)
        .all(|(.., o)| o.from_end.p50 < serial_stats.mean);

    let total = (3 * inputs.len()).max(arrivals);
    eprintln!("saturation: 1 worker/stage, {total} queries...");
    let (staged_1w_qps, match_1w) = saturate(&sirius, &inputs, &reference, 1, 2, total);
    eprintln!("saturation: {workers} workers/stage, {total} queries...");
    let (staged_qps, match_nw) =
        saturate(&sirius, &inputs, &reference, workers, workers + 2, total);

    // Cluster sweep. Per replica count: first a deep-overload round-robin
    // probe (lambda scaled off the single-replica staged capacity) to
    // measure what this machine actually delivers at N — the replicas
    // contend for the same cores, so N × the single rate would overshoot —
    // then every policy at a matched CLUSTER_RHO × measured capacity, with
    // CLUSTER_TRIALS paired arrival seeds shared across the policies.
    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        v[v.len() / 2]
    };
    // Arrival order for the cluster sweep: alternate vision-heavy (image)
    // and voice-only queries. The period-2 mix is resonant with every even
    // replica count — round-robin's count-balance then lands every heavy
    // query on half the replicas. Count-balance is only work-balance when
    // the mix is uniform; a periodic mix is exactly the structural failure
    // a backlog-aware router repairs, so this is the head-to-head worth
    // measuring (with a uniform mix on a contended box, round-robin and
    // least-sojourn are indistinguishable).
    let heavy: Vec<usize> = (0..inputs.len())
        .filter(|&i| inputs[i].image.is_some())
        .collect();
    let light: Vec<usize> = (0..inputs.len())
        .filter(|&i| inputs[i].image.is_none())
        .collect();
    assert!(
        !heavy.is_empty() && !light.is_empty(),
        "input set must mix vision and voice-only queries"
    );
    let cluster_order: Vec<usize> = (0..arrivals)
        .map(|i| {
            if i % 2 == 0 {
                heavy[(i / 2) % heavy.len()]
            } else {
                light[(i / 2) % light.len()]
            }
        })
        .collect();
    type ClusterRowData = (u32, RoutePolicy, f64, f64, Vec<ClusterOutcome>);
    let mut cluster_rows: Vec<ClusterRowData> = Vec::new();
    for (ni, &n) in CLUSTER_REPLICAS.iter().enumerate() {
        let probe_lambda = CLUSTER_RHO * f64::from(n) * staged_1w_qps;
        eprintln!("cluster sweep: replicas={n} capacity probe at lambda={probe_lambda:.1}/s...");
        let probe = cluster_run(
            &sirius,
            &inputs,
            &cluster_order,
            &reference,
            n,
            RoutePolicy::RoundRobin,
            probe_lambda,
            arrivals,
            seed.wrapping_add(0xCA9 + ni as u64),
        );
        let capacity = probe.qps;
        let lambda = CLUSTER_RHO * capacity;
        for route in RoutePolicy::ALL {
            eprintln!(
                "cluster sweep: replicas={n} route={route} lambda={lambda:.1}/s ({arrivals} arrivals x {CLUSTER_TRIALS} trials)..."
            );
            let trials: Vec<ClusterOutcome> = (0..CLUSTER_TRIALS)
                .map(|t| {
                    cluster_run(
                        &sirius,
                        &inputs,
                        &cluster_order,
                        &reference,
                        n,
                        route,
                        lambda,
                        arrivals,
                        seed.wrapping_add(0xC1_0572 + (ni * CLUSTER_TRIALS + t) as u64),
                    )
                })
                .collect();
            cluster_rows.push((n, route, lambda, capacity, trials));
        }
    }
    let cluster_points: Vec<ClusterPoint> = cluster_rows
        .iter()
        .map(|(n, route, _, _, trials)| ClusterPoint {
            replicas: *n,
            route: route.to_string(),
            qps: trials.iter().map(|o| o.qps).sum::<f64>() / trials.len() as f64,
            p50_ms: median(trials.iter().map(|o| ms(o.stats.p50)).collect()),
            p99_ms: median(trials.iter().map(|o| ms(o.stats.p99)).collect()),
        })
        .collect();
    // Restate the measured scale-out against the paper's Table 8 scale-up:
    // how many machines of the homogeneous GPU design match N multicore
    // replicas.
    let accel_improvement = homogeneous_throughput_improvement(PlatformKind::Gpu);
    let cluster_cmp = ClusterComparison::against(&cluster_points, accel_improvement);
    let cluster_outputs_match = cluster_rows
        .iter()
        .all(|(.., trials)| trials.iter().all(|o| o.outputs_match));
    let cluster_accounting = cluster_rows
        .iter()
        .all(|(.., trials)| trials.iter().all(|o| o.accounting_balanced));
    // Routing head-to-head at the widest cluster, below saturation. The
    // arrival order plants one straggler (the slowest query in the set)
    // among every three fastest-third queries; with period 4 resonant
    // against 4 replicas, round-robin lands every straggler on the same
    // replica while least-sojourn steers the following arrivals around the
    // backlog it leaves behind. Policies share paired arrival seeds per
    // (rho, trial); the gate compares pooled and median p99 at the highest
    // routing load.
    let top_n = *CLUSTER_REPLICAS.last().expect("non-empty sweep");
    let mut by_lat: Vec<usize> = (0..inputs.len()).collect();
    by_lat.sort_by_key(|&i| serial_latencies[i]);
    let fastest = &by_lat[..inputs.len() / 3];
    let slowest = *by_lat.last().expect("non-empty input set");
    let straggler_order: Vec<usize> = (0..arrivals)
        .map(|i| {
            if i % 4 == 0 {
                slowest
            } else {
                fastest[(3 * (i / 4) + i % 4 - 1) % fastest.len()]
            }
        })
        .collect();
    let straggler_mean = straggler_order
        .iter()
        .map(|&i| serial_latencies[i].as_secs_f64())
        .sum::<f64>()
        / straggler_order.len() as f64;
    type RoutingRowData = (f64, f64, RoutePolicy, Vec<ClusterOutcome>, LatencyStats);
    let mut routing_rows: Vec<RoutingRowData> = Vec::new();
    for (ri, &rho) in ROUTING_RHO.iter().enumerate() {
        let lambda = rho / straggler_mean;
        for route in [RoutePolicy::RoundRobin, RoutePolicy::LeastSojourn] {
            eprintln!(
                "routing head-to-head: replicas={top_n} rho={rho} route={route} lambda={lambda:.1}/s ({arrivals} arrivals x {ROUTING_TRIALS} trials)..."
            );
            let trials: Vec<ClusterOutcome> = (0..ROUTING_TRIALS)
                .map(|t| {
                    cluster_run(
                        &sirius,
                        &inputs,
                        &straggler_order,
                        &reference,
                        top_n,
                        route,
                        lambda,
                        arrivals,
                        seed.wrapping_add(0x40D7E + (ri * ROUTING_TRIALS + t) as u64),
                    )
                })
                .collect();
            let pooled = trials
                .iter()
                .skip(1)
                .fold(trials[0].stats.clone(), |m, o| m.merge(&o.stats));
            routing_rows.push((rho, lambda, route, trials, pooled));
        }
    }
    let routing_outputs_match = routing_rows
        .iter()
        .all(|(.., trials, _)| trials.iter().all(|o| o.outputs_match));
    let routing_accounting = routing_rows
        .iter()
        .all(|(.., trials, _)| trials.iter().all(|o| o.accounting_balanced));
    let routing_peak = *ROUTING_RHO.last().expect("non-empty routing sweep");
    let routing_at = |rho: f64, want: RoutePolicy| {
        routing_rows
            .iter()
            .find(|(r, _, route, ..)| *r == rho && *route == want)
            .expect("swept routing point")
    };
    let (.., rr_trials, rr_pooled) = routing_at(routing_peak, RoutePolicy::RoundRobin);
    let (.., ls_trials, ls_pooled) = routing_at(routing_peak, RoutePolicy::LeastSojourn);
    let ratio_pooled = ms(ls_pooled.p99) / ms(rr_pooled.p99);
    let ratio_median = median(ls_trials.iter().map(|o| ms(o.stats.p99)).collect())
        / median(rr_trials.iter().map(|o| ms(o.stats.p99)).collect());
    let least_sojourn_holds = ratio_pooled.min(ratio_median) <= ROUTING_TOL;
    let cluster_outputs_match = cluster_outputs_match && routing_outputs_match;
    let cluster_accounting = cluster_accounting && routing_accounting;

    // Cache/tenant sweep: the multi-tenant heavy-tailed generator drives a
    // single-worker runtime at ρ × μ with the result cache off, small and
    // corpus-sized. Capacities at one load share one arrival seed, so the
    // capacity axis is paired.
    let cache_arrivals = arrivals.max(150);
    let mut cache_rows: Vec<(f64, usize, CacheOutcome)> = Vec::new();
    for (ri, &rho) in CACHE_RHO.iter().enumerate() {
        let lambda = rho * mu;
        let pair_seed = seed.wrapping_add(0xCAC4E + ri as u64);
        for &capacity in CACHE_CAPACITIES.iter() {
            eprintln!(
                "cache sweep: rho={rho:.1} lambda={lambda:.1}/s capacity={capacity} ({cache_arrivals} arrivals)..."
            );
            let outcome = cache_run(
                &sirius,
                &inputs,
                &reference,
                mean_service,
                lambda,
                cache_arrivals,
                capacity,
                pair_seed,
            );
            cache_rows.push((rho, capacity, outcome));
        }
    }
    let cache_outputs_match = cache_rows.iter().all(|(.., o)| o.outputs_match);
    let cache_accounting = cache_rows.iter().all(|(.., o)| o.accounting_balanced);
    // Gate 1: at and past saturation, completion throughput rises with the
    // measured hit ratio — the cache's capacity multiplication is real.
    // (Below saturation every setting just serves its arrival rate, so
    // ρ = 0.8 is reported but not gated.)
    let throughput_monotone = CACHE_RHO.iter().filter(|&&rho| rho >= 1.1).all(|&rho| {
        let mut at_rho: Vec<&(f64, usize, CacheOutcome)> =
            cache_rows.iter().filter(|(r, ..)| *r == rho).collect();
        at_rho.sort_by(|a, b| {
            a.2.hit_ratio
                .partial_cmp(&b.2.hit_ratio)
                .expect("finite hit ratios")
        });
        at_rho.windows(2).all(|w| w[1].2.qps >= w[0].2.qps * 0.95)
            && at_rho.last().expect("swept").2.qps > at_rho.first().expect("swept").2.qps * 1.05
    });
    // Gate 2: in deep overload with no cache to hide behind, weighted
    // admission protects premium — its p99 holds near its SLO (one
    // last-stage service time of overshoot allowed past the dequeue-time
    // expiry backstop) while best-effort absorbs strictly more shed.
    let overload = cache_rows
        .iter()
        .find(|(rho, capacity, _)| *rho == 1.5 && *capacity == 0)
        .expect("swept overload point");
    let premium_slo_ms = TENANT_SPEC[0].2 * mean_service * 1e3;
    let premium = &overload.2.classes[0];
    let best_effort = &overload.2.classes[2];
    let premium_protected = premium.p99_ms <= premium_slo_ms * 1.15
        && best_effort.unserved_fraction() > premium.unserved_fraction() + 0.05;
    // Line the below-saturation points up against the hit-deflected M/M/1:
    // backend μ from the serial baseline, hit cost from the measured ASR
    // mean of the corpus-sized-cache run.
    let cache_hit_cost_s = cache_rows
        .iter()
        .find(|(rho, capacity, _)| *rho == 0.8 && *capacity == *CACHE_CAPACITIES.last().unwrap())
        .expect("swept point")
        .2
        .hit_cost_ms
        / 1e3;
    let cache_points: Vec<CachePoint> = cache_rows
        .iter()
        .filter(|(rho, ..)| *rho == 0.8)
        .map(|(rho, _, o)| CachePoint {
            lambda: rho * mu,
            hit_ratio: o.hit_ratio,
            mean_latency: o.mean_sojourn_ms / 1e3,
        })
        .collect();
    let cache_cmp = CacheComparison::against(
        Mm1::from_service_time(mean_service),
        cache_hit_cost_s,
        &cache_points,
    );

    // Cache affinity: cold N-replica clusters under one shared Zipf
    // arrival order, consistent-hash vs round-robin, aggregate hit ratio.
    let affinity_order: Vec<usize> = {
        let mut gen = TenantGen::new(seed.wrapping_add(0xAFF1), inputs.len(), 1.0);
        (0..cache_arrivals).map(|_| gen.next().2).collect()
    };
    let affinity_lambda = 0.8 * staged_1w_qps;
    let mut affinity_rows: Vec<(u32, RoutePolicy, f64, bool)> = Vec::new();
    for (ni, &n) in AFFINITY_REPLICAS.iter().enumerate() {
        for route in [RoutePolicy::ConsistentHash, RoutePolicy::RoundRobin] {
            eprintln!(
                "cache affinity: replicas={n} route={route} lambda={affinity_lambda:.1}/s ({cache_arrivals} arrivals)..."
            );
            let (hit_ratio, matches) = affinity_run(
                &sirius,
                &inputs,
                &affinity_order,
                &reference,
                n,
                route,
                affinity_lambda,
                cache_arrivals,
                seed.wrapping_add(0xAFF10 + ni as u64),
            );
            affinity_rows.push((n, route, hit_ratio, matches));
        }
    }
    let affinity_outputs_match = affinity_rows.iter().all(|(.., m)| *m);
    let affinity_at = |n: u32, want: RoutePolicy| -> f64 {
        affinity_rows
            .iter()
            .find(|(rn, route, ..)| *rn == n && *route == want)
            .expect("swept affinity point")
            .2
    };
    let hash_beats_rr = AFFINITY_REPLICAS.iter().all(|&n| {
        affinity_at(n, RoutePolicy::ConsistentHash)
            >= affinity_at(n, RoutePolicy::RoundRobin) + AFFINITY_MARGIN
    });

    // Loopback network sweep: closed-loop TCP clients against the framed
    // front-end, every query crossing the real wire.
    let mut net_points = Vec::new();
    for &clients in &NET_CLIENTS {
        eprintln!("net sweep: {clients} loopback clients ({arrivals} queries)...");
        net_points.push(net_point(
            &sirius, &inputs, &reference, clients, arrivals, workers,
        ));
    }
    let net_outputs_match = net_points.iter().all(|p| p.outputs_match);
    let net_frames_balanced = net_points.iter().all(|p| p.frames_balanced);
    let net_ledger_balanced = net_points.iter().all(|p| p.ledger_balanced);
    let net_scrape_ok = net_points.iter().all(|p| p.scrape_ok);

    println!("{{");
    println!("  \"bench\": \"server\",");
    println!("  \"cores\": {cores},");
    println!("  \"arrivals_per_point\": {arrivals},");
    println!("  \"workers\": {workers},");
    println!(
        "  \"serial\": {{ \"queries\": {}, \"qps\": {:.2}, {} }},",
        inputs.len(),
        serial_qps,
        stats_json(&serial_stats)
    );
    println!(
        "  \"mm1\": {{ \"mu_qps\": {:.2}, \"mean_service_ms\": {:.3} }},",
        mu,
        mean_service * 1e3
    );
    println!("  \"open_loop\": [");
    for (i, (p, row)) in points.iter().zip(&comparison.rows).enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let tandem = p.tandem();
        println!(
            "    {{ \"rho\": {:.2}, \"lambda_qps\": {:.2}, \"offered\": {}, \"shed\": {}, {}, \"mm1_predicted_mean_ms\": {:.3}, \"mm1_relative_error\": {}, \"sojourn_reconstruction_error\": {}, \"percentiles_within_one_bucket\": {} }}{comma}",
            p.rho,
            p.lambda,
            p.offered,
            p.shed(),
            hist_json(p.sojourn()),
            row.predicted * 1e3,
            opt(row.relative_error),
            opt(tandem.reconstruction_error()),
            p.percentiles_within_one_bucket()
        );
    }
    println!("  ],");
    println!(
        "  \"mm1_mean_relative_error\": {},",
        opt(comparison.mean_relative_error())
    );
    // Per-stage tandem table at the highest swept load: each stage's own
    // arrival rate, utilization and measured-vs-predicted sojourn.
    let heaviest = points.last().expect("non-empty sweep");
    let tandem = heaviest.tandem();
    println!(
        "  \"tandem\": {{ \"rho\": {:.2}, \"stages\": [",
        heaviest.rho
    );
    for (i, row) in tandem.rows.iter().enumerate() {
        let comma = if i + 1 < tandem.rows.len() { "," } else { "" };
        println!(
            "    {{ \"stage\": \"{}\", \"lambda_qps\": {:.2}, \"rho\": {:.3}, \"measured_ms\": {:.3}, \"mm1_predicted_ms\": {:.3}, \"relative_error\": {}, \"absolute_error_ms\": {}, \"below_floor\": {} }}{comma}",
            row.stage,
            row.lambda,
            row.rho,
            row.measured * 1e3,
            row.predicted * 1e3,
            opt(row.relative_error),
            opt(row.absolute_error.map(|e| e * 1e3)),
            row.below_floor
        );
    }
    println!(
        "  ], \"reconstruction_error\": {}, \"mean_relative_error\": {} }},",
        opt(tandem.reconstruction_error()),
        opt(tandem.mean_relative_error())
    );
    println!(
        "  \"policy_sweep\": {{ \"slo_ms\": {:.3}, \"arrivals_per_point\": {policy_arrivals}, \"mm1k_capacity\": {}, \"points\": [",
        slo.as_secs_f64() * 1e3,
        POLICY_QUEUE_DEPTH + 1
    );
    for (i, ((rho, shed_on_full, deadline_aware), row)) in
        policy_rows.iter().zip(&shed_cmp.rows).enumerate()
    {
        let comma = if i + 1 < policy_rows.len() { "," } else { "" };
        println!(
            "    {{ \"rho\": {rho:.2}, \"shed_on_full\": {{ {}, \"measured_shed_rate\": {:.4}, \"mm1k_predicted_shed_rate\": {:.4}, \"absolute_error\": {:.4} }}, \"deadline_aware\": {{ {} }} }}{comma}",
            shed_on_full.json(),
            row.measured,
            row.predicted,
            row.absolute_error,
            deadline_aware.json()
        );
    }
    println!(
        "  ], \"mm1k_worst_absolute_error\": {}, \"deadline_beats_shed_on_full_at_high_load\": {deadline_beats_shed}, \"outputs_match_serial\": {policy_outputs_match}, \"accounting_balanced\": {policy_accounting} }},",
        opt(shed_cmp.worst_absolute_error())
    );
    println!(
        "  \"batch_sweep\": {{ \"acoustic\": \"dnn\", \"workers\": {workers}, \"serial_dnn_qps\": {dnn_mu:.2}, \"arrivals_per_point\": {arrivals}, \"note\": \"rho is relative to the serial single-core DNN rate; all pools share one machine\", \"points\": ["
    );
    for (i, (rho, max_batch, delay_ms, o)) in batch_rows.iter().enumerate() {
        let comma = if i + 1 < batch_rows.len() { "," } else { "" };
        println!(
            "    {{ \"rho\": {rho:.2}, \"max_batch\": {max_batch}, \"max_delay_ms\": {delay_ms}, \"qps\": {:.2}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"batch_size_mean\": {:.3}, \"batch_size_p95\": {}, \"batch_size_max\": {}, \"flush_full\": {}, \"flush_timeout\": {} }}{comma}",
            o.qps,
            o.p50_ms,
            o.p99_ms,
            o.batch_mean,
            o.batch_p95,
            o.batch_max,
            o.flushes_full,
            o.flushes_timeout
        );
    }
    // Per-load Pareto frontier over (throughput up, p99 down): the policy
    // points no other policy beats on both axes at that load.
    println!("  ], \"pareto\": [");
    for (i, &rho) in BATCH_RHO.iter().enumerate() {
        let at_rho: Vec<_> = batch_rows.iter().filter(|(r, ..)| *r == rho).collect();
        let frontier: Vec<String> = at_rho
            .iter()
            .filter(|(_, mb, dl, o)| {
                !at_rho.iter().any(|(_, omb, odl, other)| {
                    (omb, odl) != (mb, dl)
                        && other.qps >= o.qps
                        && other.p99_ms <= o.p99_ms
                        && (other.qps > o.qps || other.p99_ms < o.p99_ms)
                })
            })
            .map(|(_, mb, dl, o)| {
                format!(
                    "{{ \"max_batch\": {mb}, \"max_delay_ms\": {dl}, \"qps\": {:.2}, \"p99_ms\": {:.3} }}",
                    o.qps, o.p99_ms
                )
            })
            .collect();
        let comma = if i + 1 < BATCH_RHO.len() { "," } else { "" };
        println!(
            "    {{ \"rho\": {rho:.2}, \"frontier\": [{}] }}{comma}",
            frontier.join(", ")
        );
    }
    println!(
        "  ], \"outputs_match_serial\": {batch_outputs_match}, \"accounting_balanced\": {batch_accounting} }},"
    );
    println!(
        "  \"streaming_sweep\": {{ \"acoustic\": \"gmm\", \"workers\": {workers}, \"pacing\": {STREAM_PACING}, \"arrivals_per_point\": {stream_arrivals}, \"serial_floor_ms\": {:.3}, \"note\": \"rho is relative to the measured streaming occupancy capacity; from_end subtracts the paced arrival window\", \"points\": [",
        ms(serial_stats.mean)
    );
    for (i, (chunk_ms, rho, lambda, o)) in stream_rows.iter().enumerate() {
        let comma = if i + 1 < stream_rows.len() { "," } else { "" };
        println!(
            "    {{ \"chunk_ms\": {chunk_ms}, \"rho\": {rho:.2}, \"lambda_qps\": {lambda:.2}, \"first_partial_p50_ms\": {:.3}, \"from_submit_p50_ms\": {:.3}, \"from_submit_p99_ms\": {:.3}, \"from_end_p50_ms\": {:.3}, \"from_end_p99_ms\": {:.3}, \"partials_per_query\": {:.2}, \"spec_hit_rate\": {:.3} }}{comma}",
            o.first_partial_p50_ms,
            ms(o.from_submit.p50),
            ms(o.from_submit.p99),
            ms(o.from_end.p50),
            ms(o.from_end.p99),
            o.partials_per_query,
            o.spec_hit_rate
        );
    }
    println!(
        "  ], \"outputs_match_serial\": {stream_outputs_match}, \"from_end_p50_below_serial_floor_at_low_rho\": {stream_below_floor} }},"
    );
    println!(
        "  \"cluster_sweep\": {{ \"rho\": {CLUSTER_RHO}, \"arrivals_per_point\": {arrivals}, \"trials_per_point\": {CLUSTER_TRIALS}, \"single_replica_staged_qps\": {staged_1w_qps:.2}, \"accel_improvement_gpu\": {accel_improvement:.3}, \"note\": \"capacity points run open-loop past saturation (lambda = rho * measured capacity at N, arrivals alternate vision-heavy and voice-only queries, policies at one N share paired arrival seeds, p50/p99 are medians over the trials); the routing head-to-head runs below saturation on a straggler mix where blind routing piles every slow query onto one replica\", \"points\": ["
    );
    for (i, ((n, route, lambda, capacity, trials), (point, row))) in cluster_rows
        .iter()
        .zip(cluster_points.iter().zip(&cluster_cmp.rows))
        .enumerate()
    {
        let comma = if i + 1 < cluster_rows.len() { "," } else { "" };
        let served: Vec<String> = trials[0].served_by.iter().map(u64::to_string).collect();
        println!(
            "    {{ \"replicas\": {n}, \"route\": \"{route}\", \"capacity_qps\": {capacity:.2}, \"lambda_qps\": {lambda:.2}, \"qps\": {:.2}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"speedup_vs_1\": {}, \"efficiency\": {}, \"accelerated_equivalent_machines\": {}, \"served_by\": [{}] }}{comma}",
            point.qps,
            point.p50_ms,
            point.p99_ms,
            opt(row.speedup),
            opt(row.efficiency),
            opt(row.accelerated_equivalent),
            served.join(", ")
        );
    }
    println!(
        "  ], \"best_speedup\": {}, \"worst_scaling_efficiency\": {},",
        opt(cluster_cmp.best_speedup()),
        opt(cluster_cmp.worst_efficiency())
    );
    println!(
        "  \"routing\": {{ \"replicas\": {top_n}, \"mix\": \"1-in-4 straggler (slowest query) among fastest-third queries, period 4 resonant with {top_n} replicas under round-robin\", \"mix_mean_service_ms\": {:.3}, \"trials_per_point\": {ROUTING_TRIALS}, \"tolerance\": {ROUTING_TOL}, \"points\": [",
        straggler_mean * 1e3
    );
    for (i, (rho, lambda, route, trials, pooled)) in routing_rows.iter().enumerate() {
        let comma = if i + 1 < routing_rows.len() { "," } else { "" };
        let mut served = vec![0u64; top_n as usize];
        for o in trials {
            for (s, c) in served.iter_mut().zip(&o.served_by) {
                *s += c;
            }
        }
        let served: Vec<String> = served.iter().map(u64::to_string).collect();
        println!(
            "    {{ \"rho\": {rho}, \"route\": \"{route}\", \"lambda_qps\": {lambda:.2}, \"pooled_p50_ms\": {:.3}, \"pooled_p99_ms\": {:.3}, \"median_p99_ms\": {:.3}, \"served_by\": [{}] }}{comma}",
            ms(pooled.p50),
            ms(pooled.p99),
            median(trials.iter().map(|o| ms(o.stats.p99)).collect()),
            served.join(", ")
        );
    }
    println!(
        "  ], \"ls_rr_p99_ratio_pooled\": {ratio_pooled:.3}, \"ls_rr_p99_ratio_median\": {ratio_median:.3} }},"
    );
    println!(
        "  \"least_sojourn_p99_le_round_robin_at_peak\": {least_sojourn_holds}, \"outputs_match_serial\": {cluster_outputs_match}, \"accounting_balanced\": {cluster_accounting} }},"
    );
    println!(
        "  \"cache_sweep\": {{ \"arrivals_per_point\": {cache_arrivals}, \"zipf_exponent\": {ZIPF_EXPONENT}, \"diurnal_amplitude\": {DIURNAL_AMPLITUDE}, \"diurnal_period_s\": {DIURNAL_PERIOD_S}, \"note\": \"multi-tenant Zipf arrivals with per-class corpus permutations and diurnal rate modulation; capacities at one rho share one arrival seed; caches are invalidated after warmup so hit ratios come from measured traffic\", \"classes\": [{}], \"points\": [",
        TENANT_SPEC
            .iter()
            .map(|(name, priority, slo_mult, weight, share)| format!(
                "{{ \"name\": \"{name}\", \"priority\": {priority}, \"slo_ms\": {:.3}, \"weight\": {weight}, \"share\": {share} }}",
                slo_mult * mean_service * 1e3
            ))
            .collect::<Vec<_>>()
            .join(", ")
    );
    for (i, (rho, capacity, o)) in cache_rows.iter().enumerate() {
        let comma = if i + 1 < cache_rows.len() { "," } else { "" };
        let classes: Vec<String> = TENANT_SPEC
            .iter()
            .zip(&o.classes)
            .map(|((name, ..), c)| {
                format!(
                    "{{ \"class\": \"{name}\", \"offered\": {}, \"admitted\": {}, \"shed_deadline\": {}, \"shed_full\": {}, \"expired\": {}, \"completed\": {}, \"within_slo\": {}, \"unserved_fraction\": {:.4}, \"p99_ms\": {:.3} }}",
                    c.offered(),
                    c.admitted,
                    c.shed_deadline,
                    c.shed_full,
                    c.expired,
                    c.completed,
                    c.within_slo,
                    c.unserved_fraction(),
                    c.p99_ms
                )
            })
            .collect();
        println!(
            "    {{ \"rho\": {rho:.2}, \"capacity\": {capacity}, \"qps\": {:.2}, \"hit_ratio\": {:.4}, \"hits\": {}, \"lookups\": {}, \"mean_ms\": {:.3}, \"p99_ms\": {:.3}, \"hit_cost_ms\": {:.3}, \"classes\": [{}] }}{comma}",
            o.qps,
            o.hit_ratio,
            o.hits,
            o.lookups,
            o.mean_sojourn_ms,
            o.p99_ms,
            o.hit_cost_ms,
            classes.join(", ")
        );
    }
    println!("  ], \"mm1_cache\": {{ \"mu_qps\": {:.2}, \"hit_cost_ms\": {:.3}, \"note\": \"hit-deflected M/M/1 at the below-saturation load: predicted = h*t_hit + (1-h)/(mu - lambda*(1-h))\", \"rows\": [", cache_cmp.mu, cache_cmp.hit_cost * 1e3);
    for (i, row) in cache_cmp.rows.iter().enumerate() {
        let comma = if i + 1 < cache_cmp.rows.len() {
            ","
        } else {
            ""
        };
        println!(
            "    {{ \"lambda_qps\": {:.2}, \"hit_ratio\": {:.4}, \"effective_rho\": {:.3}, \"measured_ms\": {:.3}, \"predicted_ms\": {:.3}, \"relative_error\": {} }}{comma}",
            row.lambda,
            row.hit_ratio,
            row.effective_rho,
            row.measured * 1e3,
            row.predicted * 1e3,
            opt(row.relative_error)
        );
    }
    println!(
        "  ], \"worst_relative_error\": {} }},",
        opt(cache_cmp.worst_relative_error())
    );
    println!(
        "  \"throughput_increases_with_hit_ratio\": {throughput_monotone}, \"premium_protected_under_overload\": {premium_protected}, \"outputs_match_serial\": {cache_outputs_match}, \"accounting_balanced\": {cache_accounting} }},"
    );
    println!(
        "  \"cache_affinity\": {{ \"lambda_qps\": {affinity_lambda:.2}, \"arrivals\": {cache_arrivals}, \"margin\": {AFFINITY_MARGIN}, \"note\": \"cold clusters, shared Zipf arrival order: consistent-hash affinity concentrates each query's entries on one replica; round-robin pays up to N cold misses per query\", \"points\": ["
    );
    for (i, (n, route, hit_ratio, _)) in affinity_rows.iter().enumerate() {
        let comma = if i + 1 < affinity_rows.len() { "," } else { "" };
        println!(
            "    {{ \"replicas\": {n}, \"route\": \"{route}\", \"hit_ratio\": {hit_ratio:.4} }}{comma}"
        );
    }
    println!(
        "  ], \"hash_beats_round_robin\": {hash_beats_rr}, \"outputs_match_serial\": {affinity_outputs_match} }},"
    );
    println!(
        "  \"net_sweep\": {{ \"replicas\": {NET_REPLICAS}, \"queries_per_point\": {arrivals}, \"note\": \"closed-loop TCP clients over loopback against the framed front-end; every query crosses the wire (submit frame in, answer frame out) and each point scrapes GET /metrics on the same socket\", \"points\": ["
    );
    for (i, p) in net_points.iter().enumerate() {
        let comma = if i + 1 < net_points.len() { "," } else { "" };
        println!(
            "    {{ \"clients\": {}, \"qps\": {:.2}, {}, \"outputs_match_serial\": {}, \"frames_balanced\": {}, \"ledger_balanced\": {}, \"scrape_ok\": {} }}{comma}",
            p.clients,
            p.qps,
            stats_json(&p.stats),
            p.outputs_match,
            p.frames_balanced,
            p.ledger_balanced,
            p.scrape_ok
        );
    }
    println!(
        "  ], \"outputs_match_serial\": {net_outputs_match}, \"frames_balanced\": {net_frames_balanced}, \"ledger_balanced\": {net_ledger_balanced}, \"scrape_ok\": {net_scrape_ok} }},"
    );
    println!(
        "  \"saturation\": {{ \"total_queries\": {total}, \"staged_1worker_qps\": {:.2}, \"staged_qps\": {:.2}, \"speedup_vs_serial\": {:.2}, \"outputs_match_serial\": {} }}",
        staged_1w_qps,
        staged_qps,
        staged_qps / serial_qps,
        match_1w && match_nw
    );
    println!("}}");
}
