//! Overhead gate for the observability subsystem (`BENCH_obs.json`).
//!
//! The `sirius-obs` design contract is "near-zero cost when off": metrics
//! are always-on lock-free atomics, span tracing defaults to a disabled
//! `NoopRecorder` that skips even the clock reads. This harness measures
//! that contract three ways:
//!
//! 1. **Micro** — ns/op for every hot-path primitive (counter inc,
//!    histogram record, gauge set, disabled span, clock read).
//! 2. **Per-query** — ns for the *entire* per-query observability block the
//!    staged runtime executes with tracing disabled (all four stages' wait
//!    and service records, admission/completion counters, the sojourn
//!    record, and every `enabled()` check), measured as one unit.
//! 3. **End-to-end** — the per-query block as a fraction of the measured
//!    mean serial query latency (the gate: < 1%), plus a paired A/B serial
//!    loop (process vs process + obs block) whose median delta cross-checks
//!    that the derived fraction is not hiding cache or contention effects.
//!
//! Usage: `bench_obs [--reps N]` (default 3 A/B pairs). JSON on stdout;
//! progress on stderr.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use sirius::pipeline::{Sirius, SiriusConfig, SiriusInput};
use sirius::prepare_input_set;
use sirius_obs::{Counter, Gauge, Histogram, NoopRecorder, Recorder, Registry, Span, SpanKind};
use sirius_server::ServerMetrics;

fn ns_per_op<F: FnMut()>(iters: u64, mut op: F) -> f64 {
    let t = Instant::now();
    for _ in 0..iters {
        op();
    }
    t.elapsed().as_nanos() as f64 / iters as f64
}

/// The exact per-query observability work the staged runtime performs when
/// span tracing is disabled: queue-wait + service records for all four
/// stages, the recorder gates, admission/completion counters and the
/// end-to-end sojourn record. A question crossing every stage — the worst
/// case.
fn per_query_obs_block(m: &ServerMetrics, rec: &dyn Recorder, admitted: Instant) {
    m.accepted.inc();
    for stage in [&m.asr, &m.classify, &m.imm, &m.qa] {
        let wait = admitted.elapsed();
        stage.queue_wait.record_duration(wait);
        if rec.enabled() {
            rec.record("stage", SpanKind::QueueWait, wait);
        }
        let begun = Instant::now();
        let service = begun.elapsed();
        stage.service.record_duration(service);
        if rec.enabled() {
            rec.record("stage", SpanKind::Service, service);
        }
    }
    m.completed.inc();
    let sojourn = admitted.elapsed();
    m.sojourn.record_duration(sojourn);
    if rec.enabled() {
        rec.record("total", SpanKind::Total, sojourn);
    }
}

/// Mean ns/query of one serial pass over the input set.
fn serial_pass(sirius: &Sirius, inputs: &[SiriusInput], obs: Option<&ServerMetrics>) -> f64 {
    let rec = NoopRecorder;
    let t = Instant::now();
    for input in inputs {
        let admitted = Instant::now();
        black_box(sirius.process(input));
        if let Some(m) = obs {
            per_query_obs_block(m, &rec, admitted);
        }
    }
    t.elapsed().as_nanos() as f64 / inputs.len() as f64
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs[xs.len() / 2]
}

fn main() {
    let mut reps = 3usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reps needs a positive integer");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_obs [--reps N]");
                std::process::exit(2);
            }
        }
    }
    assert!(reps >= 1, "--reps must be at least 1");

    eprintln!("micro benchmarks (hot-path primitives)...");
    const ITERS: u64 = 1_000_000;
    let counter = Counter::default();
    let counter_inc = ns_per_op(ITERS, || counter.inc());
    let gauge = Gauge::default();
    let gauge_set = ns_per_op(ITERS, || gauge.set(black_box(42)));
    let histogram = Histogram::default();
    let mut v = 1u64;
    let histogram_record = ns_per_op(ITERS, || {
        histogram.record(black_box(v));
        v = v.wrapping_mul(6364136223846793005).wrapping_add(1) >> 32;
    });
    let clock_read = ns_per_op(ITERS, || {
        black_box(Instant::now());
    });
    let noop: Arc<dyn Recorder> = Arc::new(NoopRecorder);
    let disabled_span = ns_per_op(ITERS, || {
        Span::enter(black_box(noop.as_ref()), "asr", SpanKind::Service).exit();
    });
    let registry = Registry::new();
    let snapshot_cost = {
        let h = registry.histogram("x.lat_ns");
        for i in 0..1000u64 {
            h.record(i * 1000);
        }
        ns_per_op(1000, || {
            black_box(registry.snapshot());
        })
    };

    eprintln!("per-query observability block (tracing disabled)...");
    let metrics = ServerMetrics::new();
    let per_query_obs_ns = ns_per_op(200_000, || {
        per_query_obs_block(&metrics, noop.as_ref(), Instant::now());
    });

    eprintln!("building Sirius (trains all models)...");
    let sirius = Arc::new(Sirius::build(SiriusConfig::default()));
    let prepared = prepare_input_set(&sirius, 4242);
    let inputs: Vec<SiriusInput> = prepared.iter().map(|p| p.input()).collect();
    // Warm pass, not measured.
    serial_pass(&sirius, &inputs, None);

    eprintln!(
        "paired A/B serial loops ({reps} pairs over {} queries)...",
        inputs.len()
    );
    let ab_metrics = ServerMetrics::new();
    let mut plain = Vec::with_capacity(reps);
    let mut with_obs = Vec::with_capacity(reps);
    for _ in 0..reps {
        plain.push(serial_pass(&sirius, &inputs, None));
        with_obs.push(serial_pass(&sirius, &inputs, Some(&ab_metrics)));
    }
    let plain_ns = median(plain);
    let with_obs_ns = median(with_obs);
    let ab_overhead_pct = (with_obs_ns - plain_ns) / plain_ns * 100.0;

    let overhead_pct = per_query_obs_ns / plain_ns * 100.0;
    let pass = overhead_pct < 1.0;

    println!("{{");
    println!("  \"bench\": \"obs\",");
    println!(
        "  \"micro_ns\": {{ \"counter_inc\": {counter_inc:.1}, \"gauge_set\": {gauge_set:.1}, \"histogram_record\": {histogram_record:.1}, \"clock_read\": {clock_read:.1}, \"disabled_span\": {disabled_span:.1}, \"registry_snapshot\": {snapshot_cost:.0} }},"
    );
    println!("  \"per_query_obs_ns\": {per_query_obs_ns:.1},");
    println!("  \"serial_mean_query_ns\": {plain_ns:.0},");
    println!("  \"overhead_pct\": {overhead_pct:.4},");
    println!("  \"ab_overhead_pct\": {ab_overhead_pct:.4},");
    println!("  \"gate\": \"overhead_pct < 1.0\",");
    println!("  \"pass\": {pass}");
    println!("}}");

    if !pass {
        eprintln!("FAIL: disabled-observability overhead {overhead_pct:.3}% >= 1%");
        std::process::exit(1);
    }
    eprintln!("ok: disabled-observability overhead {overhead_pct:.4}% (< 1%)");
}
