//! Kernel speedup summary for the lazy-scoring / GEMM-batching work.
//!
//! Measures the three pairs the PR optimizes — eager vs lazy end-to-end ASR
//! decode (GMM and DNN), per-frame matvec vs GEMM-batched DNN forward, and
//! AoS vs SoA GMM scoring — and prints a JSON summary to stdout. The repo's
//! vendored criterion shim has no JSON reporter, so this binary hand-rolls
//! the one artifact the experiment recipe records (`BENCH_kernels.json`).
//!
//! Usage: `bench_kernels [--reps N]` (default 5; medians over reps).

use std::time::Instant;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use sirius_speech::asr::{AcousticModelKind, AsrSystem, AsrTrainConfig, ScoringMode};
use sirius_speech::dnn::{Dnn, DnnScratch};
use sirius_speech::gmm::Gmm;
use sirius_speech::synth::{SynthConfig, Synthesizer};

const CORPUS: [&str; 6] = [
    "set my alarm",
    "call me a cab",
    "play some jazz",
    "go home now",
    "stop the music",
    "what time is it",
];

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timing"));
    samples[samples.len() / 2]
}

struct DecodePair {
    eager_ms: f64,
    lazy_ms: f64,
    fe_ms: f64,
    scoring_ms: f64,
    search_ms: f64,
    outputs_match: bool,
}

fn bench_decode(
    asr: &AsrSystem,
    utts: &[Vec<f32>],
    kind: AcousticModelKind,
    reps: usize,
) -> DecodePair {
    let mut eager = Vec::with_capacity(reps);
    let mut lazy = Vec::with_capacity(reps);
    let mut fe = Vec::with_capacity(reps);
    let mut scoring = Vec::with_capacity(reps);
    let mut search = Vec::with_capacity(reps);
    let mut outputs_match = true;
    for _ in 0..reps {
        let mut eager_texts = Vec::new();
        let t = Instant::now();
        for samples in utts {
            eager_texts.push(
                asr.recognize_with_mode(samples, kind, ScoringMode::Eager)
                    .text,
            );
        }
        eager.push(t.elapsed().as_secs_f64() * 1e3);
        let (mut fe_s, mut sc_s, mut se_s) = (0.0f64, 0.0f64, 0.0f64);
        let t = Instant::now();
        for (samples, expect) in utts.iter().zip(&eager_texts) {
            let out = asr.recognize_with_mode(samples, kind, ScoringMode::Lazy);
            outputs_match &= out.text == *expect;
            fe_s += out.timing.feature_extraction.as_secs_f64() * 1e3;
            sc_s += out.timing.scoring.as_secs_f64() * 1e3;
            se_s += out.timing.search.as_secs_f64() * 1e3;
        }
        lazy.push(t.elapsed().as_secs_f64() * 1e3);
        fe.push(fe_s);
        scoring.push(sc_s);
        search.push(se_s);
    }
    DecodePair {
        eager_ms: median(&mut eager),
        lazy_ms: median(&mut lazy),
        fe_ms: median(&mut fe),
        scoring_ms: median(&mut scoring),
        search_ms: median(&mut search),
        outputs_match,
    }
}

fn decode_json(name: &str, p: &DecodePair) -> String {
    format!(
        concat!(
            "    \"{}\": {{\n",
            "      \"eager_ms\": {:.3},\n",
            "      \"lazy_ms\": {:.3},\n",
            "      \"speedup\": {:.2},\n",
            "      \"outputs_match\": {},\n",
            "      \"lazy_breakdown_ms\": {{ \"feature_extraction\": {:.3}, \"scoring\": {:.3}, \"search\": {:.3} }}\n",
            "    }}"
        ),
        name,
        p.eager_ms,
        p.lazy_ms,
        p.eager_ms / p.lazy_ms,
        p.outputs_match,
        p.fe_ms,
        p.scoring_ms,
        p.search_ms,
    )
}

fn bench_dnn_forward(reps: usize) -> (f64, f64, bool) {
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let net = Dnn::new(&[120, 256, 256, 128], &mut rng);
    let rows = 256usize;
    let x: Vec<f32> = (0..rows * 120)
        .map(|_| rng.gen_range(-1.0f32..1.0))
        .collect();
    let plan = net.plan();
    let mut per_frame = Vec::with_capacity(reps);
    let mut batched = Vec::with_capacity(reps);
    let mut reference: Vec<Vec<f32>> = Vec::new();
    for _ in 0..reps {
        let t = Instant::now();
        reference = x.chunks(120).map(|row| net.forward(row)).collect();
        per_frame.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let mut scratch = DnnScratch::default();
    let mut out = Vec::new();
    for _ in 0..reps {
        let t = Instant::now();
        net.forward_batch_into(&x, rows, &plan, &mut scratch, &mut out);
        batched.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let bit_identical = reference
        .iter()
        .flatten()
        .zip(&out)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    (median(&mut per_frame), median(&mut batched), bit_identical)
}

fn bench_gmm_layout(reps: usize) -> (f64, f64, bool) {
    let mut rng = ChaCha8Rng::seed_from_u64(29);
    let dim = 39usize;
    let m = 16usize;
    let means = (0..m * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let vars = (0..m * dim).map(|_| rng.gen_range(0.2f32..1.5)).collect();
    let weights = (0..m).map(|_| rng.gen_range(0.1f32..1.0)).collect();
    let gmm = Gmm::from_params(dim, means, vars, weights);
    let soa = gmm.soa();
    let frames: Vec<Vec<f32>> = (0..2048)
        .map(|_| (0..dim).map(|_| rng.gen_range(-2.0f32..2.0)).collect())
        .collect();
    let mut aos = Vec::with_capacity(reps);
    let mut soa_ms = Vec::with_capacity(reps);
    let mut reference = Vec::new();
    for _ in 0..reps {
        let t = Instant::now();
        reference = frames.iter().map(|f| gmm.log_likelihood(f)).collect();
        aos.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let mut out = vec![0.0f32; frames.len()];
    for _ in 0..reps {
        let t = Instant::now();
        soa.log_likelihood_batch(&frames, &mut out);
        soa_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let bit_identical = reference
        .iter()
        .zip(&out)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    (median(&mut aos), median(&mut soa_ms), bit_identical)
}

fn main() {
    let mut reps = 5usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reps needs a positive integer");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_kernels [--reps N]");
                std::process::exit(2);
            }
        }
    }
    assert!(reps >= 1, "--reps must be at least 1");

    eprintln!("training ASR system on {} utterances...", CORPUS.len());
    let asr = AsrSystem::train(&CORPUS, 42, AsrTrainConfig::default());
    let mut synth = Synthesizer::new(777, SynthConfig::default());
    let utts: Vec<Vec<f32>> = CORPUS.iter().map(|t| synth.say(t).samples).collect();

    eprintln!("benchmarking decode (eager vs lazy), {reps} reps...");
    let gmm = bench_decode(&asr, &utts, AcousticModelKind::Gmm, reps);
    let dnn = bench_decode(&asr, &utts, AcousticModelKind::Dnn, reps);
    eprintln!("benchmarking DNN forward (matvec vs GEMM)...");
    let (pf_ms, gemm_ms, dnn_bits) = bench_dnn_forward(reps);
    eprintln!("benchmarking GMM layout (AoS vs SoA)...");
    let (aos_ms, soa_ms, gmm_bits) = bench_gmm_layout(reps);

    println!("{{");
    println!("  \"bench\": \"kernels\",");
    println!("  \"reps\": {reps},");
    println!("  \"corpus_utterances\": {},", CORPUS.len());
    println!("  \"asr_decode\": {{");
    println!("{},", decode_json("gmm", &gmm));
    println!("{}", decode_json("dnn", &dnn));
    println!("  }},");
    println!(
        "  \"dnn_forward\": {{ \"per_frame_matvec_ms\": {:.3}, \"batched_gemm_ms\": {:.3}, \"speedup\": {:.2}, \"bit_identical\": {} }},",
        pf_ms,
        gemm_ms,
        pf_ms / gemm_ms,
        dnn_bits
    );
    println!(
        "  \"gmm_scoring\": {{ \"component_major_aos_ms\": {:.3}, \"dimension_major_soa_ms\": {:.3}, \"speedup\": {:.2}, \"bit_identical\": {} }}",
        aos_ms,
        soa_ms,
        aos_ms / soa_ms,
        gmm_bits
    );
    println!("}}");
}
