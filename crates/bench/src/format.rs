//! Plain-text table rendering for figure/table reproductions.

/// A simple aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates a table with a title.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            ..Self::default()
        }
    }

    /// Sets the column headers.
    pub fn header<I, S>(&mut self, cols: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.header = cols.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a row.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Appends a footnote line.
    pub fn note(&mut self, text: impl Into<String>) -> &mut Self {
        self.notes.push(text.into());
        self
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        let all_rows = std::iter::once(&self.header).chain(self.rows.iter());
        for row in all_rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_owned()
        };
        if !self.header.is_empty() {
            out.push_str(&fmt_row(&self.header));
            out.push('\n');
            out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1))));
            out.push('\n');
        }
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a float with 1 decimal and a trailing `x`.
pub fn speedup(x: f64) -> String {
    format!("{x:.1}x")
}

/// Formats a duration in adaptive units.
pub fn duration(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.0} µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_rows() {
        let mut t = Table::new("Demo");
        t.header(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "22"]);
        t.note("a note");
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("alpha  1"));
        assert!(s.contains("note: a note"));
    }

    #[test]
    fn formats() {
        assert_eq!(speedup(10.04), "10.0x");
        assert_eq!(duration(std::time::Duration::from_millis(91)), "91.00 ms");
        assert_eq!(duration(std::time::Duration::from_secs(15)), "15.00 s");
        assert_eq!(duration(std::time::Duration::from_micros(12)), "12 µs");
    }
}
