//! Hot-path kernel benches for the lazy-scoring / GEMM-batching work:
//!
//! * Eager whole-utterance scoring + decode vs the lazy beam-driven provider
//!   (GMM and DNN acoustic models).
//! * Per-frame matrix-vector DNN forward vs the frame-batched GEMM forward.
//! * Component-major (AoS) GMM log-likelihood vs the dimension-major (SoA)
//!   batch kernel.
//!
//! All pairs are bit-identical by construction (see DESIGN.md "Lazy
//! beam-driven acoustic scoring"), so these benches measure pure speed.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::OnceLock;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use sirius_speech::asr::{AsrSystem, AsrTrainConfig};
use sirius_speech::dnn::{Dnn, DnnScratch};
use sirius_speech::gmm::Gmm;
use sirius_speech::hmm::{AcousticScorer, Decoder, DecoderConfig};
use sirius_speech::synth::{SynthConfig, Synthesizer};

const CORPUS: [&str; 4] = [
    "set my alarm",
    "play some jazz",
    "what time is it",
    "go home now",
];

type AsrContext = (AsrSystem, Vec<Vec<Vec<f32>>>);

fn asr_context() -> &'static AsrContext {
    static CTX: OnceLock<AsrContext> = OnceLock::new();
    CTX.get_or_init(|| {
        let asr = AsrSystem::train(&CORPUS, 5, AsrTrainConfig::default());
        let mut synth = Synthesizer::new(99, SynthConfig::default());
        let utts = CORPUS
            .iter()
            .map(|t| {
                let utt = synth.say(t);
                asr.frontend().extract(&utt.samples)
            })
            .collect();
        (asr, utts)
    })
}

fn bench_decode_eager_vs_lazy(c: &mut Criterion) {
    let (asr, utts) = asr_context();
    let decoder = Decoder::new(asr.lexicon(), DecoderConfig::default());
    let mut group = c.benchmark_group("kernel_decode");
    group.sample_size(10);
    group.bench_function("gmm_eager", |b| {
        b.iter(|| {
            for frames in utts {
                let emis = asr.gmm_scorer().score_utterance(frames);
                black_box(decoder.decode_scores(&emis, asr.lm(), asr.lexicon()));
            }
        })
    });
    group.bench_function("gmm_lazy", |b| {
        b.iter(|| {
            for frames in utts {
                let mut scores = asr.gmm_scorer().lazy_scores(frames);
                black_box(decoder.decode_lazy(&mut scores, asr.lm(), asr.lexicon()));
            }
        })
    });
    group.bench_function("dnn_eager", |b| {
        b.iter(|| {
            for frames in utts {
                let emis = asr.dnn_scorer().score_utterance(frames);
                black_box(decoder.decode_scores(&emis, asr.lm(), asr.lexicon()));
            }
        })
    });
    group.bench_function("dnn_lazy", |b| {
        b.iter(|| {
            for frames in utts {
                let mut scores = asr.dnn_scorer().lazy_scores(frames);
                black_box(decoder.decode_lazy(&mut scores, asr.lm(), asr.lexicon()));
            }
        })
    });
    group.finish();
}

fn bench_dnn_forward(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let net = Dnn::new(&[120, 256, 256, 128], &mut rng);
    let rows = 64usize;
    let x: Vec<f32> = (0..rows * 120)
        .map(|_| rng.gen_range(-1.0f32..1.0))
        .collect();
    let plan = net.plan();
    let mut group = c.benchmark_group("kernel_dnn_forward");
    group.sample_size(10);
    group.bench_function("per_frame_matvec", |b| {
        b.iter(|| {
            for row in x.chunks(120) {
                black_box(net.forward(row));
            }
        })
    });
    group.bench_function("batched_gemm", |b| {
        let mut scratch = DnnScratch::default();
        let mut out = Vec::new();
        b.iter(|| {
            net.forward_batch_into(&x, rows, &plan, &mut scratch, &mut out);
            black_box(out.last().copied());
        })
    });
    group.finish();
}

fn random_gmm(dim: usize, m: usize, rng: &mut ChaCha8Rng) -> Gmm {
    let means = (0..m * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let vars = (0..m * dim).map(|_| rng.gen_range(0.2f32..1.5)).collect();
    let weights = (0..m).map(|_| rng.gen_range(0.1f32..1.0)).collect();
    Gmm::from_params(dim, means, vars, weights)
}

fn bench_gmm_layout(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(29);
    let dim = 39usize;
    let gmm = random_gmm(dim, 16, &mut rng);
    let soa = gmm.soa();
    let frames: Vec<Vec<f32>> = (0..128)
        .map(|_| (0..dim).map(|_| rng.gen_range(-2.0f32..2.0)).collect())
        .collect();
    let mut group = c.benchmark_group("kernel_gmm_layout");
    group.sample_size(10);
    group.bench_function("component_major_aos", |b| {
        b.iter(|| {
            for f in &frames {
                black_box(gmm.log_likelihood(f));
            }
        })
    });
    group.bench_function("dimension_major_soa_batch", |b| {
        let mut out = vec![0.0f32; frames.len()];
        b.iter(|| {
            soa.log_likelihood_batch(&frames, &mut out);
            black_box(out.last().copied());
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_decode_eager_vs_lazy,
    bench_dnn_forward,
    bench_gmm_layout
);
criterion_main!(benches);
