//! Criterion benches for the seven Sirius Suite kernels (Table 4/5):
//! single-threaded baseline vs the multicore port. This regenerates the
//! measured CMP column of Table 5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sirius_suite::standard_suite;

fn bench_kernels(c: &mut Criterion) {
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let suite = standard_suite(0.2, 42);
    let mut group = c.benchmark_group("sirius_suite");
    group.sample_size(10);
    for kernel in &suite {
        group.bench_function(BenchmarkId::new("baseline", kernel.name()), |b| {
            b.iter(|| black_box(kernel.run_baseline()))
        });
        group.bench_function(
            BenchmarkId::new(format!("parallel_x{threads}"), kernel.name()),
            |b| b.iter(|| black_box(kernel.run_parallel(threads))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
