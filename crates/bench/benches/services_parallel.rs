//! Multicore scaling of the live service kernels (paper Figures 13/14):
//! per-service latency and speedup at 1/2/4/8 threads for each scheduling
//! strategy, with the serial run as the baseline.
//!
//! The measured kernels are the ones [`sirius::pipeline::SiriusConfig::exec`]
//! parallelizes: GMM and DNN acoustic scoring (frames), SURF extraction +
//! description + ANN voting (tiles/keypoints), and QA document filters + CRF
//! tagging (documents). Output is bit-identical across all cells; only the
//! wall-clock changes.

use std::time::{Duration, Instant};

use sirius::pipeline::{Sirius, SiriusConfig};
use sirius::prepare_input_set;
use sirius_par::{ExecPolicy, Strategy};
use sirius_speech::asr::AcousticModelKind;
use std::hint::black_box;

const THREADS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 3;

fn measure<F: FnMut()>(mut f: F) -> Duration {
    // Warm-up, then best-of-REPS to damp scheduler noise.
    f();
    (0..REPS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .min()
        .unwrap()
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("services_parallel: multicore scaling of the live service kernels");
    println!("host parallelism: {cores} core(s)");
    if cores < 2 {
        println!(
            "note: with a single core, threaded cells measure scheduling overhead, \
             not speedup; run on a multicore host to reproduce Fig. 13/14."
        );
    }

    let mut sirius = Sirius::build(SiriusConfig::default());
    let prepared = prepare_input_set(&sirius, 77_777);
    let vc = prepared[0].utterance.samples.clone();
    let image = prepared
        .iter()
        .find_map(|p| p.image.clone())
        .expect("input set has VIQ queries");
    let question = "What is the capital of Italy?";

    // Each workload runs one query end to end through the kernels the
    // policy parallelizes.
    let services = ["asr_gmm", "asr_dnn", "imm", "qa"];

    println!();
    println!(
        "{:<10} {:<12} {:>10} {:>10} {:>10} {:>10}  speedup@4",
        "service", "strategy", "x1", "x2", "x4", "x8"
    );
    for service in services {
        for strategy in Strategy::ALL {
            let mut times = Vec::with_capacity(THREADS.len());
            for threads in THREADS {
                sirius.set_exec_policy(ExecPolicy::new(threads, strategy));
                let elapsed = match service {
                    "asr_gmm" => measure(|| {
                        black_box(sirius.asr().recognize(&vc, AcousticModelKind::Gmm));
                    }),
                    "asr_dnn" => measure(|| {
                        black_box(sirius.asr().recognize(&vc, AcousticModelKind::Dnn));
                    }),
                    "imm" => measure(|| {
                        black_box(sirius.imm().match_image(&image));
                    }),
                    _ => measure(|| {
                        black_box(sirius.qa().answer(question));
                    }),
                };
                times.push(elapsed);
            }
            let at = |i: usize| times[i].as_secs_f64() * 1e3;
            let speedup4 = at(0) / at(2).max(1e-9);
            println!(
                "{:<10} {:<12} {:>8.2}ms {:>8.2}ms {:>8.2}ms {:>8.2}ms  {:>7.2}x",
                service,
                strategy.to_string(),
                at(0),
                at(1),
                at(2),
                at(3),
                speedup4
            );
        }
    }
    sirius.set_exec_policy(ExecPolicy::serial());
    println!();
    println!(
        "speedup@4 is serial time / 4-thread time per strategy; the paper's \
         CMP ports reach >=2x at 4 cores on the scoring-dominated services."
    );
}
