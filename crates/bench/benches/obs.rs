//! Hot-path benches for the observability substrate: the primitives stage
//! workers execute per job (counter inc, histogram record, disabled span)
//! must stay in the nanoseconds — `scripts/check.sh` builds this bench and
//! `bench_obs` gates the end-to-end overhead below 1%.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

use sirius_obs::{Counter, Histogram, NoopRecorder, Recorder, Registry, Span, SpanKind};

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_primitives");
    group.sample_size(20);

    let counter = Counter::default();
    group.bench_function("counter_inc", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                counter.inc();
            }
            black_box(counter.get())
        })
    });

    let histogram = Histogram::default();
    group.bench_function("histogram_record_1k", |b| {
        b.iter(|| {
            let mut v = 1u64;
            for _ in 0..1000 {
                histogram.record(black_box(v));
                v = v.wrapping_mul(6364136223846793005).wrapping_add(1) >> 32;
            }
        })
    });

    let noop = NoopRecorder;
    group.bench_function("disabled_span_1k", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                Span::enter(black_box(&noop as &dyn Recorder), "asr", SpanKind::Service).exit();
            }
        })
    });

    group.bench_function("clock_read_1k", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                black_box(Instant::now());
            }
        })
    });

    group.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    let registry = Registry::new();
    for stage in ["asr", "classify", "imm", "qa"] {
        let h = registry.histogram(&format!("{stage}.service_ns"));
        for i in 0..10_000u64 {
            h.record(i * 997);
        }
        registry.counter(&format!("{stage}.panics")).inc();
    }
    let mut group = c.benchmark_group("obs_export");
    group.sample_size(20);
    group.bench_function("snapshot_4stage", |b| {
        b.iter(|| black_box(registry.snapshot()))
    });
    let snap = registry.snapshot();
    group.bench_function("render_json", |b| b.iter(|| black_box(snap.to_json())));
    group.finish();
}

criterion_group!(benches, bench_primitives, bench_snapshot);
criterion_main!(benches);
