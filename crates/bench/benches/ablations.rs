//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * Viterbi beam width (accuracy/latency trade-off in the decoder).
//! * SURF tile size for the multicore FE port (the paper fixes a 50x50
//!   minimum).
//! * ANN search budget (exact vs bounded best-bin-first).
//! * Stemmer scheduling: chunked vs interleaved vs work-queue (the paper's
//!   Phi finding).
//! * CRF decoding: Viterbi vs posterior (forward-backward).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::OnceLock;

use sirius_nlp::crf::{Crf, TrainConfig};
use sirius_nlp::pos;
use sirius_speech::asr::{AcousticModelKind, AsrSystem, AsrTrainConfig};
use sirius_speech::hmm::{AcousticScorer, Decoder, DecoderConfig};
use sirius_speech::synth::{SynthConfig, Synthesizer};
use sirius_suite::kernels::fe::FeKernel;
use sirius_suite::kernels::gmm::GmmKernel;
use sirius_suite::kernels::stemmer::StemmerKernel;
use sirius_suite::Kernel;
use sirius_vision::ann::{KdTree, SearchBudget};
use sirius_vision::synth as vsynth;

fn bench_beam_width(c: &mut Criterion) {
    static CTX: OnceLock<(AsrSystem, Vec<f32>, Vec<Vec<f32>>)> = OnceLock::new();
    let (asr, _samples, emissions) = CTX.get_or_init(|| {
        let corpus = ["set my alarm", "play some jazz", "what time is it"];
        let asr = AsrSystem::train(&corpus, 5, AsrTrainConfig::default());
        let utt = Synthesizer::new(99, SynthConfig::default()).say("play some jazz");
        let frames = asr.frontend().extract(&utt.samples);
        let emis = asr.gmm_scorer().score_utterance(&frames);
        (asr, utt.samples, emis)
    });
    let mut group = c.benchmark_group("ablation_beam");
    group.sample_size(10);
    for beam in [250.0f32, 1000.0, 2500.0, 10_000.0] {
        let decoder = Decoder::new(
            asr.lexicon(),
            DecoderConfig {
                beam,
                ..DecoderConfig::default()
            },
        );
        group.bench_function(BenchmarkId::new("viterbi", beam as u64), |b| {
            b.iter(|| black_box(decoder.decode_scores(emissions, asr.lm(), asr.lexicon())))
        });
    }
    group.finish();
}

fn bench_tile_size(c: &mut Criterion) {
    let image = vsynth::generate_scene(7, 384, 288);
    let mut group = c.benchmark_group("ablation_fe_tile");
    group.sample_size(10);
    for tile in [64usize, 96, 128, 192] {
        let kernel = FeKernel::with_tile_size(image.clone(), tile);
        group.bench_function(BenchmarkId::new("tiled_x4", tile), |b| {
            b.iter(|| black_box(kernel.run_parallel(4)))
        });
    }
    group.finish();
}

fn bench_ann_budget(c: &mut Criterion) {
    use rand::Rng;
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
    let points: Vec<(Vec<f32>, u32)> = (0..4000)
        .map(|i| {
            (
                (0..64).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
                i as u32,
            )
        })
        .collect();
    let queries: Vec<Vec<f32>> = (0..64)
        .map(|_| (0..64).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    let tree = KdTree::build(points);
    let mut group = c.benchmark_group("ablation_ann");
    group.sample_size(10);
    for (name, budget) in [
        ("checks_32", SearchBudget::MaxChecks(32)),
        ("checks_128", SearchBudget::MaxChecks(128)),
        ("checks_512", SearchBudget::MaxChecks(512)),
        ("exact", SearchBudget::Exact),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                for q in &queries {
                    black_box(tree.nearest2(q, budget));
                }
            })
        });
    }
    group.finish();
}

fn bench_stemmer_scheduling(c: &mut Criterion) {
    let kernel = StemmerKernel::generate(0.2, 11);
    let mut group = c.benchmark_group("ablation_stemmer_sched");
    group.sample_size(10);
    group.bench_function("chunked_x4", |b| {
        b.iter(|| black_box(kernel.run_parallel(4)))
    });
    group.bench_function("interleaved_x4", |b| {
        b.iter(|| black_box(kernel.run_interleaved(4)))
    });
    group.bench_function("workqueue_x4", |b| {
        b.iter(|| black_box(kernel.run_workqueue(4)))
    });
    group.finish();
}

fn bench_crf_decoding(c: &mut Criterion) {
    let train = pos::generate(5, 200);
    let crf = Crf::train(pos::tag_set(), &train, TrainConfig::default());
    let sentences: Vec<Vec<String>> = pos::generate(6, 50).into_iter().map(|s| s.tokens).collect();
    let mut group = c.benchmark_group("ablation_crf_decode");
    group.sample_size(10);
    group.bench_function("viterbi", |b| {
        b.iter(|| {
            for s in &sentences {
                black_box(crf.decode(s));
            }
        })
    });
    group.bench_function("posterior", |b| {
        b.iter(|| {
            for s in &sentences {
                black_box(crf.decode_posterior(s));
            }
        })
    });
    group.finish();
}

fn bench_asr_models(c: &mut Criterion) {
    let corpus = ["turn lights on", "turn lights off", "set my alarm"];
    let asr = AsrSystem::train(&corpus, 13, AsrTrainConfig::default());
    let utt = Synthesizer::new(414, SynthConfig::default()).say("set my alarm");
    let mut group = c.benchmark_group("ablation_acoustic_model");
    group.sample_size(10);
    group.bench_function("gmm", |b| {
        b.iter(|| black_box(asr.recognize(&utt.samples, AcousticModelKind::Gmm)))
    });
    group.bench_function("dnn", |b| {
        b.iter(|| black_box(asr.recognize(&utt.samples, AcousticModelKind::Dnn)))
    });
    group.finish();
}

fn bench_gmm_layout(c: &mut Criterion) {
    // The paper's GPU port gained an order of magnitude by transposing the
    // GMM parameters for coalesced access (Section 4.4.1); on a CPU the
    // dimension-major layout trades stride for vectorizable inner loops.
    let kernel = GmmKernel::generate(0.5, 21);
    let mut group = c.benchmark_group("ablation_gmm_layout");
    group.sample_size(10);
    group.bench_function("component_major_aos", |b| {
        b.iter(|| black_box(kernel.run_layout(false)))
    });
    group.bench_function("dimension_major_soa", |b| {
        b.iter(|| black_box(kernel.run_layout(true)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_beam_width,
    bench_tile_size,
    bench_ann_budget,
    bench_stemmer_scheduling,
    bench_crf_decoding,
    bench_asr_models,
    bench_gmm_layout
);
criterion_main!(benches);
