//! Criterion benches for the three Sirius services (paper Figure 14's
//! measured baseline): ASR with GMM and DNN scoring, QA, and IMM.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::OnceLock;

use sirius::pipeline::{Sirius, SiriusConfig};
use sirius::prepare_input_set;
use sirius::PreparedQuery;
use sirius_speech::asr::AcousticModelKind;

fn context() -> &'static (Sirius, Vec<PreparedQuery>) {
    static CTX: OnceLock<(Sirius, Vec<PreparedQuery>)> = OnceLock::new();
    CTX.get_or_init(|| {
        let sirius = Sirius::build(SiriusConfig::default());
        let prepared = prepare_input_set(&sirius, 77_777);
        (sirius, prepared)
    })
}

fn bench_services(c: &mut Criterion) {
    let (sirius, prepared) = context();
    let vc = &prepared[0]; // voice command audio
    let viq = prepared
        .iter()
        .find(|p| p.image.is_some())
        .expect("input set has VIQ queries");
    let image = viq.image.as_ref().expect("VIQ has image");

    let mut group = c.benchmark_group("services");
    group.sample_size(10);
    group.bench_function("asr_gmm", |b| {
        b.iter(|| {
            black_box(
                sirius
                    .asr()
                    .recognize(&vc.utterance.samples, AcousticModelKind::Gmm),
            )
        })
    });
    group.bench_function("asr_dnn", |b| {
        b.iter(|| {
            black_box(
                sirius
                    .asr()
                    .recognize(&vc.utterance.samples, AcousticModelKind::Dnn),
            )
        })
    });
    group.bench_function("qa", |b| {
        b.iter(|| black_box(sirius.qa().answer("What is the capital of Italy?")))
    });
    group.bench_function("imm", |b| {
        b.iter(|| black_box(sirius.imm().match_image(image)))
    });
    group.finish();
}

criterion_group!(benches, bench_services);
criterion_main!(benches);
