//! ANN `nearest2` bench: exact best-bin-first vs bounded check budgets.
//!
//! Exercises the shared squared-distance helper and the maintained
//! second-best bound (`worst`) that prunes subtree descents — the ann.rs
//! satellite of the lazy-scoring PR. Complements `ablation_ann` in
//! `ablations.rs` with a larger, clustered point set where bound-driven
//! pruning matters more than on uniform data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::OnceLock;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use sirius_vision::ann::{KdTree, SearchBudget};

const DIM: usize = 64;
const CLUSTERS: usize = 32;
const PER_CLUSTER: usize = 250;

type AnnContext = (KdTree, Vec<Vec<f32>>);

/// Clustered descriptors: SURF keypoints from real images bunch around
/// repeated texture, so a Gaussian-mixture point set is the representative
/// workload for the second-best bound.
fn ann_context() -> &'static AnnContext {
    static CTX: OnceLock<AnnContext> = OnceLock::new();
    CTX.get_or_init(|| {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let centers: Vec<Vec<f32>> = (0..CLUSTERS)
            .map(|_| (0..DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .collect();
        let mut points = Vec::with_capacity(CLUSTERS * PER_CLUSTER);
        for c in &centers {
            for _ in 0..PER_CLUSTER {
                let p: Vec<f32> = c.iter().map(|&x| x + rng.gen_range(-0.1..0.1)).collect();
                points.push((p, points.len() as u32));
            }
        }
        let queries: Vec<Vec<f32>> = (0..128)
            .map(|_| {
                let c = &centers[rng.gen_range(0..CLUSTERS)];
                c.iter().map(|&x| x + rng.gen_range(-0.15..0.15)).collect()
            })
            .collect();
        (KdTree::build(points), queries)
    })
}

fn bench_nearest2(c: &mut Criterion) {
    let (tree, queries) = ann_context();
    let mut group = c.benchmark_group("ann_nearest2");
    group.sample_size(10);
    for (name, budget) in [
        ("checks_64", SearchBudget::MaxChecks(64)),
        ("checks_256", SearchBudget::MaxChecks(256)),
        ("checks_1024", SearchBudget::MaxChecks(1024)),
        ("exact", SearchBudget::Exact),
    ] {
        group.bench_function(BenchmarkId::new("clustered", name), |b| {
            b.iter(|| {
                for q in queries {
                    black_box(tree.nearest2(q, budget));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_nearest2);
criterion_main!(benches);
