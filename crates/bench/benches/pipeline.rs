//! Criterion benches for the end-to-end pipeline per query class
//! (paper Figure 7b: VC < VQ < VIQ latency ordering).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::OnceLock;

use sirius::pipeline::{Sirius, SiriusConfig};
use sirius::taxonomy::QueryKind;
use sirius::{prepare_input_set, PreparedQuery};

fn context() -> &'static (Sirius, Vec<PreparedQuery>) {
    static CTX: OnceLock<(Sirius, Vec<PreparedQuery>)> = OnceLock::new();
    CTX.get_or_init(|| {
        let sirius = Sirius::build(SiriusConfig::default());
        let prepared = prepare_input_set(&sirius, 88_888);
        (sirius, prepared)
    })
}

fn bench_pipeline(c: &mut Criterion) {
    let (sirius, prepared) = context();
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    for kind in QueryKind::ALL {
        let query = prepared
            .iter()
            .find(|p| p.spec.kind == kind)
            .expect("input set covers all kinds");
        let input = query.input();
        group.bench_function(BenchmarkId::new("query", kind.short_name()), |b| {
            b.iter(|| black_box(sirius.process(&input)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
