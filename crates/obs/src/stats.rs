//! Exact nearest-rank percentile arithmetic.
//!
//! This module is the *single* percentile implementation in the workspace:
//! the exact sample-set statistics (`sirius::profile::LatencyStats`) and the
//! bucketed [`Histogram`](crate::metrics::Histogram) export both resolve
//! their ranks here, so a figure table and a registry snapshot can never
//! disagree about what "p99" means.

/// The 1-based nearest rank of the `pct` percentile in a population of
/// `count` samples: the smallest rank whose cumulative share of the
/// distribution is at least `pct`/100. Zero only for an empty population.
///
/// This is the classic nearest-rank definition — `ceil(pct/100 × count)`,
/// clamped to `[1, count]` — so p100 is the maximum, p0 the minimum, and
/// p99 of four samples is the fourth.
pub fn nearest_rank(count: usize, pct: f64) -> usize {
    if count == 0 {
        return 0;
    }
    let pct = pct.clamp(0.0, 100.0);
    let rank = ((pct / 100.0) * count as f64).ceil() as usize;
    rank.clamp(1, count)
}

/// Nearest-rank percentile of an ascending-sorted sample set: the sample at
/// [`nearest_rank`]. `None` for an empty set.
pub fn percentile_of_sorted<T: Copy>(sorted: &[T], pct: f64) -> Option<T> {
    let rank = nearest_rank(sorted.len(), pct);
    (rank > 0).then(|| sorted[rank - 1])
}

/// Merges two sparse `(bucket_index, count)` tables, each ascending by
/// bucket index, summing the counts of shared buckets. This is the exact
/// union of the two underlying populations at bucket granularity — the
/// primitive that lets per-replica histogram snapshots combine into a
/// cluster-level distribution without access to raw samples.
pub fn merge_bucket_counts(a: &[(u32, u64)], b: &[(u32, u64)]) -> Vec<(u32, u64)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push((a[i].0, a[i].1 + b[j].1));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Merges two ascending-sorted sample runs into one ascending-sorted vector
/// in O(n + m) — the merge step of merge sort, so callers combining
/// per-replica sample sets never pay a full re-sort of the concatenation.
pub fn merge_sorted<T: Copy + Ord>(a: &[T], b: &[T]) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_matches_the_classic_definition() {
        assert_eq!(nearest_rank(0, 50.0), 0);
        assert_eq!(nearest_rank(100, 50.0), 50);
        assert_eq!(nearest_rank(100, 95.0), 95);
        assert_eq!(nearest_rank(100, 99.0), 99);
        assert_eq!(nearest_rank(100, 100.0), 100);
        assert_eq!(nearest_rank(100, 0.0), 1);
        // Small populations: p99 of 4 samples is the max.
        assert_eq!(nearest_rank(4, 99.0), 4);
        assert_eq!(nearest_rank(4, 50.0), 2);
        // Out-of-range percentiles clamp instead of panicking.
        assert_eq!(nearest_rank(10, -5.0), 1);
        assert_eq!(nearest_rank(10, 250.0), 10);
    }

    #[test]
    fn merge_bucket_counts_sums_shared_buckets_in_order() {
        let a = [(1u32, 2u64), (4, 1), (9, 5)];
        let b = [(0u32, 3u64), (4, 4), (12, 1)];
        let merged = merge_bucket_counts(&a, &b);
        assert_eq!(merged, vec![(0, 3), (1, 2), (4, 5), (9, 5), (12, 1)]);
        assert_eq!(merge_bucket_counts(&a, &[]), a.to_vec());
        assert_eq!(merge_bucket_counts(&[], &b), b.to_vec());
        assert!(merge_bucket_counts(&[], &[]).is_empty());
    }

    #[test]
    fn merge_sorted_is_the_merge_step_of_merge_sort() {
        let a = [1u64, 3, 3, 7];
        let b = [2u64, 3, 8];
        assert_eq!(merge_sorted(&a, &b), vec![1, 2, 3, 3, 3, 7, 8]);
        assert_eq!(merge_sorted(&a, &[]), a.to_vec());
        assert_eq!(merge_sorted::<u64>(&[], &[]), Vec::<u64>::new());
    }

    #[test]
    fn percentile_of_sorted_picks_the_ranked_sample() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_of_sorted(&sorted, 50.0), Some(50));
        assert_eq!(percentile_of_sorted(&sorted, 95.0), Some(95));
        assert_eq!(percentile_of_sorted(&sorted, 99.0), Some(99));
        assert_eq!(percentile_of_sorted(&sorted, 100.0), Some(100));
        assert_eq!(percentile_of_sorted(&sorted, 0.0), Some(1));
        assert_eq!(percentile_of_sorted::<u64>(&[], 50.0), None);
    }
}
