//! Lock-free metric primitives: counters, gauges and log-bucketed
//! histograms.
//!
//! Every recording path is wait-free on atomics — no `Mutex`, no `Condvar`,
//! no allocation — so a serving worker can record into a histogram from the
//! middle of its hot loop without perturbing the latency it is measuring.
//! Handles are cheap `Arc` clones; the same metric can be recorded from any
//! number of threads.
//!
//! Histograms are **log-linear bucketed** (8 linear sub-buckets per
//! power-of-two octave, the HdrHistogram layout at low resolution): the
//! bucket containing a value is never wider than value/8, so exported
//! percentiles are within one bucket width (≤ 12.5% relative) of the exact
//! nearest-rank sample. Exact `count`, `sum`, `min` and `max` are kept on
//! the side, so means are exact and percentiles clamp into the observed
//! range.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::stats::nearest_rank;

/// Linear sub-buckets per octave, as a power of two.
const SUB_BITS: u32 = 3;
/// Linear sub-buckets per octave (8).
const SUBS: u64 = 1 << SUB_BITS;
/// Total bucket count: values below [`SUBS`] get exact unit buckets; every
/// octave above contributes [`SUBS`] buckets up to `u64::MAX`.
pub const NUM_BUCKETS: usize = ((64 - SUB_BITS as usize) * SUBS as usize) + SUBS as usize;

/// The bucket index a value lands in. Monotone in the value.
pub fn bucket_index(value: u64) -> usize {
    if value < SUBS {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros() as u64; // >= SUB_BITS
    let octave = exp - SUB_BITS as u64 + 1;
    let sub = (value >> (exp - SUB_BITS as u64)) - SUBS;
    (octave * SUBS + sub) as usize
}

/// The inclusive `[lo, hi]` value range of a bucket.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    let index = index as u64;
    if index < SUBS {
        return (index, index);
    }
    let octave = index / SUBS;
    let sub = index % SUBS;
    let width = 1u64 << (octave - 1);
    let lo = (SUBS + sub) << (octave - 1);
    (lo, lo + (width - 1))
}

/// A monotonically increasing event count. Also used as a cycle accumulator
/// (`add` nanoseconds) by the profiler's per-component accounting.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh, unregistered counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (wrapping, as counters are).
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Accumulates a duration in nanoseconds.
    pub fn add_duration(&self, d: Duration) {
        self.add(saturating_nanos(d));
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time level (queue depth, capacity, in-flight count).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A fresh, unregistered gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the level.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Raises the level by one (for in-flight style gauges whose inc/dec
    /// calls are balanced by construction).
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Lowers the level by one, saturating at zero. An unbalanced `dec`
    /// used to wrap to ~2^64, which poisoned every consumer of the gauge
    /// (an `in_flight` read of 2^64 makes sojourn estimates shed every
    /// deadline submit forever); clamping keeps a bookkeeping bug visible
    /// as a level stuck at zero instead of an absurd backlog.
    pub fn dec(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Default EWMA weight: each new observation contributes 10%, so the meter
/// forgets its past with a time constant of about ten observations — fast
/// enough to track load shifts, slow enough to smooth per-query variance.
pub const METER_ALPHA: f64 = 0.1;

struct MeterInner {
    /// EWMA of the observed values, stored as `f64` bits.
    mean_bits: AtomicU64,
    count: AtomicU64,
}

/// A lock-free exponentially weighted moving average of a stream of `u64`
/// observations (service times in nanoseconds, by convention).
///
/// Unlike a [`Histogram`], a `Meter` answers one question cheaply: *what is
/// the recent mean?* — which is exactly what an admission controller needs
/// to estimate expected sojourn from live queue depths. The update is a CAS
/// loop on a single atomic; a race between two recorders can drop one
/// update's weight, which shifts the EWMA by at most one observation's
/// contribution and is irrelevant at admission-control accuracy.
#[derive(Clone)]
pub struct Meter(Arc<MeterInner>);

impl Default for Meter {
    fn default() -> Self {
        Self::new()
    }
}

impl Meter {
    /// A fresh, unregistered meter with no observations.
    pub fn new() -> Self {
        Self(Arc::new(MeterInner {
            mean_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }))
    }

    /// Records one observation. The first observation seeds the mean
    /// exactly; each later one folds in with weight [`METER_ALPHA`].
    pub fn record(&self, value: u64) {
        let inner = &*self.0;
        let first = inner.count.fetch_add(1, Ordering::Relaxed) == 0;
        let value = value as f64;
        let mut current = inner.mean_bits.load(Ordering::Relaxed);
        loop {
            let old = f64::from_bits(current);
            let new = if first {
                value
            } else {
                old + METER_ALPHA * (value - old)
            };
            match inner.mean_bits.compare_exchange_weak(
                current,
                new.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Records a duration in nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(saturating_nanos(d));
    }

    /// The current EWMA (0.0 before any observation).
    pub fn mean(&self) -> f64 {
        f64::from_bits(self.0.mean_bits.load(Ordering::Relaxed))
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy.
    pub fn snapshot(&self) -> MeterSnapshot {
        MeterSnapshot {
            count: self.count(),
            mean: self.mean(),
        }
    }
}

impl std::fmt::Debug for Meter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Meter")
            .field("count", &self.count())
            .field("mean", &self.mean())
            .finish()
    }
}

/// Point-in-time [`Meter`] contents.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MeterSnapshot {
    /// Observations recorded so far.
    pub count: u64,
    /// The EWMA at snapshot time (0.0 when empty).
    pub mean: f64,
}

struct HistogramInner {
    buckets: Vec<AtomicU64>, // NUM_BUCKETS long
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A lock-free log-bucketed histogram (see the module docs for the bucket
/// layout and accuracy bound). Values are unit-agnostic `u64`s; duration
/// histograms record nanoseconds via [`Histogram::record_duration`] and by
/// convention carry a `_ns` name suffix.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh, unregistered histogram.
    pub fn new() -> Self {
        Self(Arc::new(HistogramInner {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }))
    }

    /// Records one observation. Wait-free: four relaxed atomic adds and two
    /// atomic min/max updates, no locking and no allocation.
    pub fn record(&self, value: u64) {
        let inner = &*self.0;
        inner.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
        inner.min.fetch_min(value, Ordering::Relaxed);
        inner.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(saturating_nanos(d));
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Captures a consistent-enough point-in-time copy (bucket counts are
    /// read one by one; concurrent recording can skew a snapshot by the
    /// handful of events that land mid-read, which is irrelevant for load
    /// reporting).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &*self.0;
        let mut buckets = Vec::new();
        for (i, b) in inner.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((i as u32, n));
            }
        }
        let count: u64 = buckets.iter().map(|&(_, n)| n).sum();
        // Derive min/max fallbacks from the buckets themselves so a snapshot
        // torn by a concurrent `record` (bucket visible, min/max not yet)
        // still reports a sane range.
        let (min, max) = if count == 0 {
            (0, 0)
        } else {
            let lowest = bucket_bounds(buckets[0].0 as usize).0;
            let highest = bucket_bounds(buckets[buckets.len() - 1].0 as usize).0;
            let min = match inner.min.load(Ordering::Relaxed) {
                u64::MAX => lowest, // unset: fall back to the lowest bucket
                v => v,
            };
            (min, inner.max.load(Ordering::Relaxed).max(highest))
        };
        HistogramSnapshot {
            count,
            sum: inner.sum.load(Ordering::Relaxed),
            min,
            max,
            buckets,
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .finish_non_exhaustive()
    }
}

/// Point-in-time histogram contents: exact count/sum/min/max plus the
/// non-empty `(bucket index, count)` pairs in ascending bucket order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Exact sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Non-empty buckets as `(index, count)`, ascending by index.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Exact mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank percentile at bucket resolution: the upper bound of the
    /// bucket holding the ranked observation, clamped into `[min, max]`.
    /// Within one bucket width (≤ 12.5% relative) of the exact nearest-rank
    /// sample, and exact at p0/p100.
    pub fn percentile(&self, pct: f64) -> u64 {
        let rank = nearest_rank(self.count as usize, pct) as u64;
        if rank == 0 {
            return 0;
        }
        let mut seen = 0u64;
        for &(index, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                let (lo, hi) = bucket_bounds(index as usize);
                return hi.min(self.max).max(lo.max(self.min));
            }
        }
        self.max
    }

    /// Merges two snapshots into the snapshot of the combined population.
    ///
    /// The merge is *exact at bucket granularity* — identical to snapshotting
    /// one histogram that observed both populations: bucket counts sum by
    /// index ([`crate::stats::merge_bucket_counts`]), `count`/`sum` add,
    /// `min` is the min of the non-empty sides and `max` the max. This is
    /// how per-replica latency histograms combine into a cluster-level
    /// distribution without access to raw samples.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        if self.count == 0 {
            return other.clone();
        }
        if other.count == 0 {
            return self.clone();
        }
        HistogramSnapshot {
            count: self.count + other.count,
            sum: self.sum + other.sum,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            buckets: crate::stats::merge_bucket_counts(&self.buckets, &other.buckets),
        }
    }

    /// Mean in milliseconds, for nanosecond-valued histograms.
    pub fn mean_ms(&self) -> f64 {
        self.mean() / 1e6
    }

    /// Percentile in milliseconds, for nanosecond-valued histograms.
    pub fn percentile_ms(&self, pct: f64) -> f64 {
        self.percentile(pct) as f64 / 1e6
    }
}

fn saturating_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_monotone_contiguous_and_self_inverse() {
        // Every bucket's bounds contain exactly the values that map to it,
        // consecutive buckets tile the axis, and width <= lo/8 beyond the
        // linear range.
        let mut prev_hi: Option<u64> = None;
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi, "bucket {i}");
            assert_eq!(bucket_index(lo), i, "lo of bucket {i}");
            assert_eq!(bucket_index(hi), i, "hi of bucket {i}");
            if let Some(p) = prev_hi {
                assert_eq!(lo, p + 1, "bucket {i} is contiguous");
            }
            if lo >= SUBS {
                assert!((hi - lo + 1) * SUBS <= lo + SUBS, "bucket {i} too wide");
            }
            prev_hi = Some(hi);
        }
        assert_eq!(prev_hi, Some(u64::MAX));
        // Spot values across the range.
        for v in [0u64, 1, 7, 8, 9, 15, 16, 100, 1_000_000, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "{v}");
        }
    }

    #[test]
    fn histogram_snapshot_merge_equals_combined_population() {
        // Merging two snapshots must be indistinguishable from one histogram
        // that observed both sample sets.
        let combined = Histogram::new();
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [3u64, 9, 9, 1_000, 250_000, 7] {
            a.record(v);
            combined.record(v);
        }
        for v in [1u64, 9, 40_000, 40_001, 2] {
            b.record(v);
            combined.record(v);
        }
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged, combined.snapshot());
        for pct in [0.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(merged.percentile(pct), combined.snapshot().percentile(pct));
        }
        // Merge is commutative and empty sides are identity.
        assert_eq!(merged, b.snapshot().merge(&a.snapshot()));
        let empty = Histogram::new().snapshot();
        assert_eq!(a.snapshot().merge(&empty), a.snapshot());
        assert_eq!(empty.merge(&a.snapshot()), a.snapshot());
        assert_eq!(empty.merge(&empty).count, 0);
    }

    #[test]
    fn counter_and_gauge_are_plain_atomics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.add_duration(Duration::from_nanos(8));
        assert_eq!(c.get(), 50);
        let g = Gauge::new();
        assert_eq!(g.get(), 0);
        g.set(7);
        assert_eq!(g.get(), 7);
        g.inc();
        assert_eq!(g.get(), 8);
        g.dec();
        g.dec();
        assert_eq!(g.get(), 6);
    }

    #[test]
    fn gauge_dec_saturates_at_zero() {
        // Regression: an unbalanced `dec` wrapped to u64::MAX, which made
        // in-flight-style gauges report an absurd backlog and (downstream)
        // admission control reject everything. It must clamp at zero.
        let g = Gauge::new();
        g.dec();
        assert_eq!(g.get(), 0, "dec on an empty gauge must not wrap");
        g.inc();
        g.dec();
        g.dec();
        g.dec();
        assert_eq!(g.get(), 0);
        // The gauge still works normally afterwards.
        g.inc();
        g.inc();
        assert_eq!(g.get(), 2);
    }

    #[test]
    fn meter_tracks_a_recent_mean() {
        let m = Meter::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.count(), 0);
        // The first observation seeds the mean exactly.
        m.record(1000);
        assert_eq!(m.mean(), 1000.0);
        // A steady stream converges to the stream's value...
        for _ in 0..200 {
            m.record(2000);
        }
        assert!((m.mean() - 2000.0).abs() < 1.0, "mean {}", m.mean());
        // ...and a level shift is tracked within a few time constants.
        for _ in 0..200 {
            m.record(500);
        }
        assert!((m.mean() - 500.0).abs() < 1.0, "mean {}", m.mean());
        let snap = m.snapshot();
        assert_eq!(snap.count, 401);
        assert!((snap.mean - m.mean()).abs() < f64::EPSILON);
        m.record_duration(Duration::from_nanos(500));
        assert_eq!(m.count(), 402);
    }

    #[test]
    fn meter_survives_concurrent_recording() {
        let m = Meter::new();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..5_000u64 {
                        m.record(1_000);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(m.count(), 20_000);
        // Every observation is 1000; whatever the interleaving, the EWMA of
        // a constant stream is that constant (the seed race folds 1000 into
        // a 0 base at worst, which 20k further updates wash out).
        assert!((m.mean() - 1000.0).abs() < 1.0, "mean {}", m.mean());
    }

    #[test]
    fn histogram_percentiles_are_within_one_bucket_of_exact() {
        // A deliberately skewed sample set; compare against the exact
        // nearest-rank values through the same stats::nearest_rank code.
        let mut samples: Vec<u64> = (0..2000u64).map(|i| (i * i * 7919) % 900_001).collect();
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        let snap = h.snapshot();
        assert_eq!(snap.count, samples.len() as u64);
        assert_eq!(snap.sum, samples.iter().sum::<u64>());
        assert_eq!(snap.min, samples[0]);
        assert_eq!(snap.max, *samples.last().unwrap());
        for pct in [0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0] {
            let exact = crate::stats::percentile_of_sorted(&samples, pct).unwrap();
            let approx = snap.percentile(pct);
            let (lo, hi) = bucket_bounds(bucket_index(exact));
            let width = hi - lo + 1;
            assert!(
                approx.abs_diff(exact) <= width,
                "p{pct}: approx {approx} vs exact {exact} (bucket width {width})"
            );
        }
        // The extremes are exact thanks to min/max clamping.
        assert_eq!(snap.percentile(0.0), samples[0]);
        assert_eq!(snap.percentile(100.0), *samples.last().unwrap());
    }

    #[test]
    fn empty_histogram_snapshot_is_all_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 0);
        assert_eq!(snap.mean(), 0.0);
        assert_eq!(snap.percentile(99.0), 0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        h.record(t * 5_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 20_000);
        assert_eq!(snap.sum, (0..20_000u64).sum::<u64>());
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 19_999);
    }
}
