//! Per-query span tracing.
//!
//! A serving runtime attributes every query's life to three kinds of time:
//! waiting in a stage's queue, being serviced by a stage, and the end-to-end
//! total (sojourn). [`Recorder`] is the sink for those attributions; the
//! default [`NoopRecorder`] reports itself disabled so instrumented code can
//! skip even the clock reads — observability that is *off* costs two branch
//! predictions, not two `Instant::now()` calls.
//!
//! [`Span`] is the RAII helper for code that wants a region timed without
//! hand-measuring: it reads the clock only when the recorder is enabled and
//! reports on drop.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// What a recorded duration represents in a query's life.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Time spent queued in front of a stage.
    QueueWait,
    /// Time spent being processed by a stage.
    Service,
    /// End-to-end sojourn time (admission to completion); the `stage` label
    /// is conventionally `"total"`.
    Total,
}

impl SpanKind {
    /// Stable lowercase label (`queue_wait` / `service` / `total`).
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::QueueWait => "queue_wait",
            SpanKind::Service => "service",
            SpanKind::Total => "total",
        }
    }
}

/// A sink for per-query time attributions.
///
/// Implementations must be cheap and thread-safe: stage workers call
/// [`Recorder::record`] from the serving hot path. A recorder that is not
/// interested reports `enabled() == false` and instrumented code skips the
/// clock reads entirely.
pub trait Recorder: Send + Sync {
    /// Whether instrumented code should measure at all. Defaults to `true`;
    /// [`NoopRecorder`] overrides it to `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// One attributed duration: `stage` is the stable stage name (`"asr"`,
    /// `"qa"`, ... or `"total"` for [`SpanKind::Total`]).
    fn record(&self, stage: &'static str, kind: SpanKind, elapsed: Duration);
}

/// The default recorder: disabled, records nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _stage: &'static str, _kind: SpanKind, _elapsed: Duration) {}
}

/// A recorder that collects every event into a vector — for tests and
/// per-query debugging, not for production hot paths (it takes a lock per
/// event).
#[derive(Debug, Default)]
pub struct CollectingRecorder {
    events: Mutex<Vec<(&'static str, SpanKind, Duration)>>,
}

impl CollectingRecorder {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Everything recorded so far, in arrival order.
    pub fn events(&self) -> Vec<(&'static str, SpanKind, Duration)> {
        self.events.lock().expect("collector lock").clone()
    }

    /// Sum of recorded durations matching a `(stage, kind)` filter.
    pub fn total_for(&self, stage: &str, kind: SpanKind) -> Duration {
        self.events
            .lock()
            .expect("collector lock")
            .iter()
            .filter(|(s, k, _)| *s == stage && *k == kind)
            .map(|&(_, _, d)| d)
            .sum()
    }
}

impl Recorder for CollectingRecorder {
    fn record(&self, stage: &'static str, kind: SpanKind, elapsed: Duration) {
        self.events
            .lock()
            .expect("collector lock")
            .push((stage, kind, elapsed));
    }
}

/// An RAII timed region: measures from [`Span::enter`] to drop and reports
/// to the recorder — unless the recorder is disabled, in which case the
/// clock is never read.
#[must_use = "a span measures until it is dropped"]
pub struct Span<'r> {
    recorder: &'r dyn Recorder,
    stage: &'static str,
    kind: SpanKind,
    started: Option<Instant>,
}

impl<'r> Span<'r> {
    /// Starts a span over `recorder`; free when the recorder is disabled.
    pub fn enter(recorder: &'r dyn Recorder, stage: &'static str, kind: SpanKind) -> Self {
        let started = recorder.enabled().then(Instant::now);
        Self {
            recorder,
            stage,
            kind,
            started,
        }
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn exit(self) {}
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(started) = self.started {
            self.recorder
                .record(self.stage, self.kind, started.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_to_an_enabled_recorder() {
        let rec = CollectingRecorder::new();
        {
            let _span = Span::enter(&rec, "asr", SpanKind::Service);
            std::thread::sleep(Duration::from_millis(1));
        }
        Span::enter(&rec, "asr", SpanKind::QueueWait).exit();
        let events = rec.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].0, "asr");
        assert_eq!(events[0].1, SpanKind::Service);
        assert!(events[0].2 >= Duration::from_millis(1));
        assert!(rec.total_for("asr", SpanKind::Service) >= Duration::from_millis(1));
        assert_eq!(rec.total_for("qa", SpanKind::Service), Duration::ZERO);
    }

    #[test]
    fn noop_recorder_skips_the_clock() {
        let rec = NoopRecorder;
        assert!(!rec.enabled());
        let span = Span::enter(&rec, "asr", SpanKind::Service);
        assert!(span.started.is_none(), "disabled recorder must not time");
        span.exit();
    }

    #[test]
    fn span_kind_labels_are_stable() {
        assert_eq!(SpanKind::QueueWait.label(), "queue_wait");
        assert_eq!(SpanKind::Service.label(), "service");
        assert_eq!(SpanKind::Total.label(), "total");
    }
}
