//! The metrics registry: named counters, gauges and histograms with a
//! point-in-time [`Snapshot`] and two renderers (JSON for `BENCH_*.json`
//! artifacts, Prometheus-style text for humans).
//!
//! Registration (`counter`/`gauge`/`histogram`) takes a short lock to insert
//! the name; it happens once, at wiring time. The returned handles record
//! through lock-free atomics ([`crate::metrics`]), so the serving hot path
//! never touches the registry lock.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Meter, MeterSnapshot};

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
    meters: BTreeMap<String, Meter>,
}

/// A named collection of metrics. Cloning shares the underlying registry;
/// handles returned for the same name are the same metric.
///
/// Naming convention: dot-separated paths (`asr.service_ns`), with a `_ns`
/// suffix for nanosecond-valued histograms and counters.
#[derive(Clone, Default)]
pub struct Registry(Arc<Mutex<Inner>>);

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        self.0
            .lock()
            .expect("registry lock")
            .counters
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.0
            .lock()
            .expect("registry lock")
            .gauges
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.0
            .lock()
            .expect("registry lock")
            .histograms
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// The EWMA meter named `name`, registering it on first use.
    pub fn meter(&self, name: &str) -> Meter {
        self.0
            .lock()
            .expect("registry lock")
            .meters
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Captures every registered metric at this instant.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.0.lock().expect("registry lock");
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(n, g)| (n.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(n, h)| (n.clone(), h.snapshot()))
                .collect(),
            meters: inner
                .meters
                .iter()
                .map(|(n, m)| (n.clone(), m.snapshot()))
                .collect(),
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.0.lock().expect("registry lock");
        f.debug_struct("Registry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

/// A point-in-time capture of a [`Registry`], in name order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// `(name, value)` per counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge.
    pub gauges: Vec<(String, u64)>,
    /// `(name, contents)` per histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// `(name, contents)` per EWMA meter.
    pub meters: Vec<(String, MeterSnapshot)>,
}

impl Snapshot {
    /// The captured value of a counter, if it was registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        lookup(&self.counters, name).copied()
    }

    /// The captured value of a gauge, if it was registered.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        lookup(&self.gauges, name).copied()
    }

    /// The captured contents of a histogram, if it was registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        lookup(&self.histograms, name)
    }

    /// The captured contents of an EWMA meter, if it was registered.
    pub fn meter(&self, name: &str) -> Option<&MeterSnapshot> {
        lookup(&self.meters, name)
    }

    /// Renders the snapshot as a JSON object: counters and gauges as plain
    /// numbers, histograms as `{count, sum, min, max, mean, p50, p95, p99}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let mut first = true;
        for (name, value) in self.counters.iter().chain(&self.gauges) {
            push_entry(&mut out, &mut first);
            out.push_str(&format!("  \"{}\": {value}", json_escape(name)));
        }
        for (name, h) in &self.histograms {
            push_entry(&mut out, &mut first);
            out.push_str(&format!(
                "  \"{}\": {{ \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {:.1}, \"p50\": {}, \"p95\": {}, \"p99\": {} }}",
                json_escape(name),
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean(),
                h.percentile(50.0),
                h.percentile(95.0),
                h.percentile(99.0),
            ));
        }
        for (name, m) in &self.meters {
            push_entry(&mut out, &mut first);
            out.push_str(&format!(
                "  \"{}\": {{ \"count\": {}, \"mean\": {:.1} }}",
                json_escape(name),
                m.count,
                m.mean
            ));
        }
        out.push_str("\n}");
        out
    }

    /// Renders the snapshot in Prometheus exposition format (counters and
    /// gauges as samples, histograms as summaries with quantile labels).
    /// Dots in metric names become underscores.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let name = sanitize(name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            let name = sanitize(name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
        }
        for (name, h) in &self.histograms {
            let name = sanitize(name);
            out.push_str(&format!("# TYPE {name} summary\n"));
            for (q, pct) in [("0.5", 50.0), ("0.95", 95.0), ("0.99", 99.0)] {
                out.push_str(&format!(
                    "{name}{{quantile=\"{q}\"}} {}\n",
                    h.percentile(pct)
                ));
            }
            out.push_str(&format!("{name}_sum {}\n", h.sum));
            out.push_str(&format!("{name}_count {}\n", h.count));
        }
        for (name, m) in &self.meters {
            let name = sanitize(name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", m.mean));
        }
        out
    }
}

fn lookup<'a, T>(entries: &'a [(String, T)], name: &str) -> Option<&'a T> {
    entries
        .binary_search_by(|(n, _)| n.as_str().cmp(name))
        .ok()
        .map(|i| &entries[i].1)
}

fn push_entry(out: &mut String, first: &mut bool) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
}

/// Maps an arbitrary registry name onto a valid Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`). Every disallowed character — including the
/// newlines and braces an adversarial tenant-class label could smuggle in —
/// collapses to `_`, and names that are empty or start with a digit get a
/// leading `_` so the result always matches the grammar.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    if matches!(name.chars().next(), None | Some('0'..='9')) {
        out.push('_');
    }
    out.extend(
        name.chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }),
    );
    out
}

/// Escapes a registry name for use inside a JSON string literal, so hostile
/// names (quotes, backslashes, control characters) cannot break the
/// rendered document.
fn json_escape(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_returns_the_same_metric() {
        let r = Registry::new();
        r.counter("queries").add(2);
        r.counter("queries").inc();
        assert_eq!(r.snapshot().counter("queries"), Some(3));
        r.gauge("depth").set(5);
        assert_eq!(r.snapshot().gauge("depth"), Some(5));
        r.histogram("lat_ns").record(100);
        r.histogram("lat_ns").record(300);
        r.meter("svc_ewma_ns").record(400);
        r.meter("svc_ewma_ns").record(400);
        let snap = r.snapshot();
        assert_eq!(snap.histogram("lat_ns").unwrap().count, 2);
        let meter = snap.meter("svc_ewma_ns").unwrap();
        assert_eq!(meter.count, 2);
        assert!((meter.mean - 400.0).abs() < f64::EPSILON);
        assert_eq!(snap.counter("missing"), None);
        assert_eq!(snap.gauge("missing"), None);
        assert!(snap.histogram("missing").is_none());
        assert!(snap.meter("missing").is_none());
    }

    #[test]
    fn clones_share_the_registry() {
        let r = Registry::new();
        let c = r.counter("hits");
        let r2 = r.clone();
        r2.counter("hits").add(7);
        assert_eq!(c.get(), 7);
    }

    #[test]
    fn json_rendering_is_parseable_shape() {
        let r = Registry::new();
        r.counter("a.shed").add(4);
        r.gauge("a.depth").set(2);
        let h = r.histogram("a.lat_ns");
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        r.meter("a.svc_ewma_ns").record(5);
        let json = r.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"a.shed\": 4"));
        assert!(json.contains("\"a.depth\": 2"));
        assert!(json.contains("\"count\": 3"));
        assert!(json.contains("\"sum\": 60"));
        assert!(json.contains("\"a.svc_ewma_ns\": { \"count\": 1, \"mean\": 5.0 }"));
        // One comma between every pair of entries (4 entries -> 3 commas).
        assert_eq!(json.matches(",\n").count(), 3);
    }

    /// A tenant-class label chosen to break both renderers: it leads with a
    /// digit (invalid Prometheus name start), and carries a newline, braces,
    /// a quote and a backslash (exposition-line and JSON injection vectors).
    #[test]
    fn hostile_metric_names_cannot_break_rendering() {
        let hostile = "tenant.9premium{evil=\"x\"}\ninjected_metric 42\\";
        let r = Registry::new();
        r.counter(&format!("{hostile}.shed")).add(3);
        r.counter(&format!("1{hostile}")).inc();
        r.histogram(&format!("{hostile}.sojourn_ns")).record(1000);

        let text = r.snapshot().to_prometheus();
        for line in text.lines() {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            // Every sample line must be exactly `name value` (the summary
            // quantile label is emitted by us, after sanitization).
            let (name, value) = line.split_once(' ').expect("name SP value");
            let bare = name.split('{').next().unwrap();
            let mut chars = bare.chars();
            let head = chars.next().expect("non-empty name");
            assert!(
                head.is_ascii_alphabetic() || head == '_',
                "bad name start in {line:?}"
            );
            assert!(
                chars.all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "bad name char in {line:?}"
            );
            assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
        }
        assert!(
            !text.contains("injected_metric 42"),
            "newline injection must not survive as its own line: {text}"
        );

        let json = r.snapshot().to_json();
        // No raw quote/backslash/newline from the name survives unescaped:
        // strip the escaped forms and the document structure must still
        // balance quotes (an even count) and parse shape-wise.
        let flat = json
            .replace("\\\\", "")
            .replace("\\\"", "")
            .replace("\\u", "");
        assert_eq!(
            flat.matches('"').count() % 2,
            0,
            "unbalanced quotes: {json}"
        );
        assert!(!json.contains("}\ninjected"), "raw newline in name: {json}");
    }

    #[test]
    fn prometheus_rendering_sanitizes_and_summarizes() {
        let r = Registry::new();
        r.counter("asr.shed").inc();
        r.gauge("asr.queue_depth").set(3);
        r.histogram("asr.service_ns").record(1000);
        r.meter("asr.service_ewma_ns").record(1000);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE asr_service_ewma_ns gauge\nasr_service_ewma_ns 1000\n"));
        assert!(text.contains("# TYPE asr_shed counter\nasr_shed 1\n"));
        assert!(text.contains("# TYPE asr_queue_depth gauge\nasr_queue_depth 3\n"));
        assert!(text.contains("# TYPE asr_service_ns summary\n"));
        assert!(text.contains("asr_service_ns{quantile=\"0.99\"}"));
        assert!(text.contains("asr_service_ns_count 1\n"));
        assert!(
            !text.contains("asr.") && !text.contains("queue_depth."),
            "metric names must be sanitized: {text}"
        );
    }
}
