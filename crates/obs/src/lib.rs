//! # sirius-obs
//!
//! The observability substrate of the Sirius serving stack: a dependency-free
//! metrics registry, log-bucketed latency histograms, and a per-query span
//! tracing API.
//!
//! The paper's entire warehouse-scale argument rests on *measurement* —
//! VTune cycle attribution (Fig. 9/10), per-service latency distributions
//! (Fig. 8a) and the per-stage service times that feed its M/M/1 datacenter
//! models (Fig. 16/17). This crate is the layer that produces those numbers
//! from a *running* system instead of ad-hoc timers: the staged runtime
//! (`sirius-server`) records per-stage queue-wait and service-time
//! histograms, queue-depth gauges and shed counters into a [`Registry`];
//! the pipeline profiler (`sirius::profile`) accumulates its per-component
//! cycle accounting over the same primitives; and `bench_server` exports
//! [`Snapshot`]s whose per-stage means line up against the
//! `sirius_dcsim::compare` tandem-queue predictions.
//!
//! Design rules:
//!
//! * **Lock-free hot path.** `Counter::add`, `Gauge::set` and
//!   `Histogram::record` are relaxed atomics — no `Mutex`, no `Condvar`, no
//!   allocation. The registry lock is taken only at registration and
//!   snapshot time.
//! * **Bounded error, declared.** Histograms bucket log-linearly (8
//!   sub-buckets per octave); exported percentiles are within one bucket
//!   width (≤ 12.5% relative) of the exact nearest-rank sample, and the
//!   rank arithmetic is shared with the exact-sample path
//!   ([`stats::nearest_rank`]) so the two can only differ by bucketing.
//! * **Near-zero cost when off.** The default [`NoopRecorder`] reports
//!   itself disabled and instrumented code skips even the clock reads;
//!   `scripts/bench_obs.sh` gates the end-to-end overhead below 1%.

#![warn(missing_docs)]

pub mod metrics;
pub mod registry;
pub mod stats;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Meter, MeterSnapshot};
pub use registry::{Registry, Snapshot};
pub use trace::{CollectingRecorder, NoopRecorder, Recorder, Span, SpanKind};
