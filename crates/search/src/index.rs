//! Inverted index with BM25 ranking.
//!
//! This is the Nutch/Lucene stand-in used by the scalability-gap experiment
//! (paper Figure 7a: a web-search query averages ~91 ms vs ~15 s for Sirius)
//! and by the OpenEphyra-style QA engine for document retrieval.

use std::collections::HashMap;

use crate::tokenize;

/// Identifier of an indexed document (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DocId(pub u32);

impl std::fmt::Display for DocId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "doc{}", self.0)
    }
}

/// One posting: a document and the term frequency within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Posting {
    doc: DocId,
    term_freq: u32,
}

/// A ranked search result.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// Matching document.
    pub doc: DocId,
    /// BM25 relevance score (higher is better).
    pub score: f64,
}

/// BM25 ranking parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bm25Params {
    /// Term-frequency saturation (`k1`), typically 1.2–2.0.
    pub k1: f64,
    /// Length normalization (`b`), 0 = none, 1 = full.
    pub b: f64,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Self { k1: 1.2, b: 0.75 }
    }
}

/// Global collection statistics a shard scores against.
///
/// BM25 is a *collection-relative* model: idf depends on how many documents
/// in the whole corpus contain a term. A shard that only sees its own
/// postings would compute different idfs and its partial scores could not be
/// merged with its siblings'. Capturing the full-index document frequencies
/// here and injecting them into every shard makes each shard's per-document
/// score bit-identical to the score the unsharded index would produce.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CollectionStats {
    doc_freqs: HashMap<String, usize>,
}

impl CollectionStats {
    /// Global document frequency of `term` (0 for unknown terms).
    pub fn doc_freq(&self, term: &str) -> usize {
        self.doc_freqs.get(term).copied().unwrap_or(0)
    }

    /// Number of distinct terms in the full collection.
    pub fn num_terms(&self) -> usize {
        self.doc_freqs.len()
    }
}

/// An inverted index over a set of documents with BM25 scoring.
///
/// Build with [`InvertedIndex::add_document`] then call
/// [`InvertedIndex::finalize`] before searching.
#[derive(Debug, Default)]
pub struct InvertedIndex {
    postings: HashMap<String, Vec<Posting>>,
    documents: Vec<String>,
    doc_lengths: Vec<u32>,
    avg_doc_len: f64,
    params: Bm25Params,
    finalized: bool,
    /// `Some` on a shard: global document frequencies override the local
    /// posting-list lengths so idf matches the unsharded index exactly.
    global: Option<CollectionStats>,
}

impl InvertedIndex {
    /// Creates an empty index with default BM25 parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty index with explicit BM25 parameters.
    pub fn with_params(params: Bm25Params) -> Self {
        Self {
            params,
            ..Self::default()
        }
    }

    /// Adds a document and returns its id.
    pub fn add_document(&mut self, text: &str) -> DocId {
        let id = DocId(self.documents.len() as u32);
        let tokens = tokenize::tokenize(text);
        self.doc_lengths.push(tokens.len() as u32);
        let mut tf: HashMap<String, u32> = HashMap::new();
        for t in tokens {
            *tf.entry(t).or_insert(0) += 1;
        }
        for (term, term_freq) in tf {
            self.postings
                .entry(term)
                .or_default()
                .push(Posting { doc: id, term_freq });
        }
        self.documents.push(text.to_owned());
        self.finalized = false;
        id
    }

    /// Computes collection statistics. Must be called after the last
    /// [`add_document`](Self::add_document) and before [`search`](Self::search).
    pub fn finalize(&mut self) {
        let total: u64 = self.doc_lengths.iter().map(|&l| u64::from(l)).sum();
        self.avg_doc_len = if self.documents.is_empty() {
            0.0
        } else {
            total as f64 / self.documents.len() as f64
        };
        for postings in self.postings.values_mut() {
            postings.sort_by_key(|p| p.doc);
        }
        self.finalized = true;
    }

    /// Number of indexed documents.
    pub fn num_documents(&self) -> usize {
        self.documents.len()
    }

    /// Number of distinct terms in the index.
    pub fn num_terms(&self) -> usize {
        self.postings.len()
    }

    /// Returns the original text of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn document(&self, id: DocId) -> &str {
        &self.documents[id.0 as usize]
    }

    /// Document frequency of `term` (number of documents containing it).
    ///
    /// On a [`shard`](Self::shard) this is the *global* frequency captured
    /// at shard time, not the length of the shard's filtered posting list —
    /// idf must be collection-relative for partial scores to merge exactly.
    pub fn doc_freq(&self, term: &str) -> usize {
        match &self.global {
            Some(stats) => stats.doc_freq(term),
            None => self.postings.get(term).map_or(0, Vec::len),
        }
    }

    /// Snapshot of the collection statistics every shard must score against.
    pub fn collection_stats(&self) -> CollectionStats {
        match &self.global {
            Some(stats) => stats.clone(),
            None => CollectionStats {
                doc_freqs: self
                    .postings
                    .iter()
                    .map(|(term, postings)| (term.clone(), postings.len()))
                    .collect(),
            },
        }
    }

    /// Builds shard `shard` of `num_shards`: postings are partitioned by
    /// `doc.0 % num_shards` while the document store, document lengths and
    /// global statistics ([`CollectionStats`], `avg_doc_len`, document
    /// count) are carried whole. Each document therefore scores on exactly
    /// one shard, and scores it produces are bit-identical to the unsharded
    /// index's — the same idf, the same length normalization, the same
    /// query-term accumulation order — so [`merge_hits`] over per-shard
    /// result lists reproduces [`search`](Self::search) exactly.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is zero or `shard >= num_shards`.
    pub fn shard(&self, shard: u32, num_shards: u32) -> InvertedIndex {
        assert!(
            num_shards > 0 && shard < num_shards,
            "invalid shard {shard}/{num_shards}"
        );
        let postings: HashMap<String, Vec<Posting>> = self
            .postings
            .iter()
            .filter_map(|(term, postings)| {
                let kept: Vec<Posting> = postings
                    .iter()
                    .copied()
                    .filter(|p| p.doc.0 % num_shards == shard)
                    .collect();
                (!kept.is_empty()).then(|| (term.clone(), kept))
            })
            .collect();
        InvertedIndex {
            postings,
            documents: self.documents.clone(),
            doc_lengths: self.doc_lengths.clone(),
            avg_doc_len: self.avg_doc_len,
            params: self.params,
            finalized: true,
            global: Some(self.collection_stats()),
        }
    }

    /// BM25 inverse document frequency of `term`.
    pub fn idf(&self, term: &str) -> f64 {
        let n = self.num_documents() as f64;
        let df = self.doc_freq(term) as f64;
        // BM25+ style floor keeps idf positive for very common terms.
        ((n - df + 0.5) / (df + 0.5) + 1.0).ln()
    }

    /// Runs a BM25-ranked search and returns up to `k` hits, best first.
    ///
    /// Stop words are removed from the query; documents keep them so that the
    /// QA document filters can still match phrases.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if [`finalize`](Self::finalize) was not called
    /// after the last document insertion.
    pub fn search(&self, query: &str, k: usize) -> Vec<SearchHit> {
        debug_assert!(
            self.finalized || self.documents.is_empty(),
            "InvertedIndex::search called before finalize()"
        );
        let mut terms = tokenize::content_tokens(query);
        if terms.is_empty() {
            // Pure stop-word query: fall back to raw tokens so "who is it"
            // still retrieves something rather than nothing.
            terms = tokenize::tokenize(query);
        }
        let mut scores: HashMap<DocId, f64> = HashMap::new();
        for term in &terms {
            let Some(postings) = self.postings.get(term) else {
                continue;
            };
            let idf = self.idf(term);
            for p in postings {
                let dl = f64::from(self.doc_lengths[p.doc.0 as usize]);
                let tf = f64::from(p.term_freq);
                let denom = tf
                    + self.params.k1
                        * (1.0 - self.params.b + self.params.b * dl / self.avg_doc_len.max(1.0));
                let contrib = idf * tf * (self.params.k1 + 1.0) / denom;
                *scores.entry(p.doc).or_insert(0.0) += contrib;
            }
        }
        let mut hits: Vec<SearchHit> = scores
            .into_iter()
            .map(|(doc, score)| SearchHit { doc, score })
            .collect();
        hits.sort_by(hit_order);
        hits.truncate(k);
        hits
    }
}

/// The one result ordering: score descending, ties broken by ascending
/// document id. Total over hits with distinct documents, so any hit set has
/// exactly one sorted arrangement — the property scatter-gather merging
/// depends on.
fn hit_order(a: &SearchHit, b: &SearchHit) -> std::cmp::Ordering {
    b.score
        .partial_cmp(&a.score)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then(a.doc.cmp(&b.doc))
}

/// Merges per-shard top-`k` result lists into the global top-`k`, best
/// first, using the same [`hit_order`] comparator
/// [`InvertedIndex::search`] sorts with.
///
/// Because every document scores on exactly one shard (bit-identically to
/// the unsharded index, see [`InvertedIndex::shard`]) and each shard
/// returns its own top-`k`, the union of the inputs contains the global
/// top-`k`; re-sorting under the shared total order and truncating
/// reproduces the unsharded [`InvertedIndex::search`] output exactly,
/// order and score bits included.
pub fn merge_hits(lists: impl IntoIterator<Item = Vec<SearchHit>>, k: usize) -> Vec<SearchHit> {
    let mut hits: Vec<SearchHit> = lists.into_iter().flatten().collect();
    hits.sort_by(hit_order);
    hits.truncate(k);
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_index() -> InvertedIndex {
        let mut idx = InvertedIndex::new();
        idx.add_document("the quick brown fox jumps over the lazy dog");
        idx.add_document("a quick reference to rust programming");
        idx.add_document("the dog barks at the brown cat");
        idx.finalize();
        idx
    }

    #[test]
    fn search_ranks_more_relevant_first() {
        let idx = small_index();
        let hits = idx.search("brown dog", 3);
        // Both doc0 and doc2 contain "brown" and "dog"; doc2 is shorter, so
        // BM25 length normalization ranks it first. doc1 contains neither.
        assert_eq!(hits[0].doc, DocId(2));
        assert_eq!(hits.len(), 2);
        assert!(hits[0].score >= hits[1].score);
    }

    #[test]
    fn doc_freq_and_idf() {
        let idx = small_index();
        assert_eq!(idx.doc_freq("quick"), 2);
        assert_eq!(idx.doc_freq("rust"), 1);
        assert_eq!(idx.doc_freq("zebra"), 0);
        assert!(idx.idf("rust") > idx.idf("quick"));
        assert!(idx.idf("the") > 0.0, "idf stays positive for common terms");
    }

    #[test]
    fn search_respects_k() {
        let idx = small_index();
        let hits = idx.search("the", 1);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn stop_word_only_query_still_matches() {
        let idx = small_index();
        assert!(!idx.search("the", 3).is_empty());
    }

    #[test]
    fn unknown_terms_return_empty() {
        let idx = small_index();
        assert!(idx.search("xylophone quartz", 5).is_empty());
    }

    #[test]
    fn term_frequency_boosts_score() {
        let mut idx = InvertedIndex::new();
        idx.add_document("rust rust rust rust");
        idx.add_document("rust and other topics");
        idx.finalize();
        let hits = idx.search("rust", 2);
        assert_eq!(hits[0].doc, DocId(0));
    }

    #[test]
    fn num_terms_counts_vocabulary() {
        let idx = small_index();
        assert!(idx.num_terms() >= 10);
    }

    /// An index whose duplicate documents force exact BM25 score ties, so
    /// the merge's doc-id tie-break is actually exercised.
    fn tie_heavy_index() -> InvertedIndex {
        let mut idx = InvertedIndex::new();
        for _ in 0..4 {
            idx.add_document("the quick brown fox jumps over the lazy dog");
            idx.add_document("a quick reference to rust programming");
            idx.add_document("the dog barks at the brown cat");
        }
        idx.add_document("brown brown brown");
        idx.finalize();
        idx
    }

    #[test]
    fn shard_keeps_global_statistics() {
        let idx = tie_heavy_index();
        for n in [1u32, 2, 3, 4, 8] {
            for i in 0..n {
                let s = idx.shard(i, n);
                assert_eq!(s.num_documents(), idx.num_documents());
                for term in ["quick", "brown", "rust", "the", "zebra"] {
                    assert_eq!(s.doc_freq(term), idx.doc_freq(term), "df({term})");
                    assert_eq!(s.idf(term).to_bits(), idx.idf(term).to_bits());
                }
                assert_eq!(s.document(DocId(5)), idx.document(DocId(5)));
            }
        }
    }

    #[test]
    fn merged_shard_results_are_bit_identical_to_unsharded_search() {
        let idx = tie_heavy_index();
        for query in ["brown dog", "quick rust", "the", "fox cat programming"] {
            for k in [1usize, 3, 5, 64] {
                let global = idx.search(query, k);
                for n in [1u32, 2, 3, 4, 8] {
                    let merged = merge_hits((0..n).map(|i| idx.shard(i, n).search(query, k)), k);
                    assert_eq!(merged, global, "query={query:?} k={k} shards={n}");
                    for (m, g) in merged.iter().zip(&global) {
                        assert_eq!(m.score.to_bits(), g.score.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn shard_of_shard_round_trips_collection_stats() {
        let idx = tie_heavy_index();
        let stats = idx.collection_stats();
        let s = idx.shard(0, 2);
        assert_eq!(s.collection_stats(), stats);
    }

    #[test]
    #[should_panic(expected = "invalid shard")]
    fn shard_index_out_of_range_panics() {
        let _ = small_index().shard(2, 2);
    }
}
