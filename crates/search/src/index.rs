//! Inverted index with BM25 ranking.
//!
//! This is the Nutch/Lucene stand-in used by the scalability-gap experiment
//! (paper Figure 7a: a web-search query averages ~91 ms vs ~15 s for Sirius)
//! and by the OpenEphyra-style QA engine for document retrieval.

use std::collections::HashMap;

use crate::tokenize;

/// Identifier of an indexed document (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DocId(pub u32);

impl std::fmt::Display for DocId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "doc{}", self.0)
    }
}

/// One posting: a document and the term frequency within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Posting {
    doc: DocId,
    term_freq: u32,
}

/// A ranked search result.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// Matching document.
    pub doc: DocId,
    /// BM25 relevance score (higher is better).
    pub score: f64,
}

/// BM25 ranking parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bm25Params {
    /// Term-frequency saturation (`k1`), typically 1.2–2.0.
    pub k1: f64,
    /// Length normalization (`b`), 0 = none, 1 = full.
    pub b: f64,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Self { k1: 1.2, b: 0.75 }
    }
}

/// An inverted index over a set of documents with BM25 scoring.
///
/// Build with [`InvertedIndex::add_document`] then call
/// [`InvertedIndex::finalize`] before searching.
#[derive(Debug, Default)]
pub struct InvertedIndex {
    postings: HashMap<String, Vec<Posting>>,
    documents: Vec<String>,
    doc_lengths: Vec<u32>,
    avg_doc_len: f64,
    params: Bm25Params,
    finalized: bool,
}

impl InvertedIndex {
    /// Creates an empty index with default BM25 parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty index with explicit BM25 parameters.
    pub fn with_params(params: Bm25Params) -> Self {
        Self {
            params,
            ..Self::default()
        }
    }

    /// Adds a document and returns its id.
    pub fn add_document(&mut self, text: &str) -> DocId {
        let id = DocId(self.documents.len() as u32);
        let tokens = tokenize::tokenize(text);
        self.doc_lengths.push(tokens.len() as u32);
        let mut tf: HashMap<String, u32> = HashMap::new();
        for t in tokens {
            *tf.entry(t).or_insert(0) += 1;
        }
        for (term, term_freq) in tf {
            self.postings
                .entry(term)
                .or_default()
                .push(Posting { doc: id, term_freq });
        }
        self.documents.push(text.to_owned());
        self.finalized = false;
        id
    }

    /// Computes collection statistics. Must be called after the last
    /// [`add_document`](Self::add_document) and before [`search`](Self::search).
    pub fn finalize(&mut self) {
        let total: u64 = self.doc_lengths.iter().map(|&l| u64::from(l)).sum();
        self.avg_doc_len = if self.documents.is_empty() {
            0.0
        } else {
            total as f64 / self.documents.len() as f64
        };
        for postings in self.postings.values_mut() {
            postings.sort_by_key(|p| p.doc);
        }
        self.finalized = true;
    }

    /// Number of indexed documents.
    pub fn num_documents(&self) -> usize {
        self.documents.len()
    }

    /// Number of distinct terms in the index.
    pub fn num_terms(&self) -> usize {
        self.postings.len()
    }

    /// Returns the original text of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn document(&self, id: DocId) -> &str {
        &self.documents[id.0 as usize]
    }

    /// Document frequency of `term` (number of documents containing it).
    pub fn doc_freq(&self, term: &str) -> usize {
        self.postings.get(term).map_or(0, Vec::len)
    }

    /// BM25 inverse document frequency of `term`.
    pub fn idf(&self, term: &str) -> f64 {
        let n = self.num_documents() as f64;
        let df = self.doc_freq(term) as f64;
        // BM25+ style floor keeps idf positive for very common terms.
        ((n - df + 0.5) / (df + 0.5) + 1.0).ln()
    }

    /// Runs a BM25-ranked search and returns up to `k` hits, best first.
    ///
    /// Stop words are removed from the query; documents keep them so that the
    /// QA document filters can still match phrases.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if [`finalize`](Self::finalize) was not called
    /// after the last document insertion.
    pub fn search(&self, query: &str, k: usize) -> Vec<SearchHit> {
        debug_assert!(
            self.finalized || self.documents.is_empty(),
            "InvertedIndex::search called before finalize()"
        );
        let mut terms = tokenize::content_tokens(query);
        if terms.is_empty() {
            // Pure stop-word query: fall back to raw tokens so "who is it"
            // still retrieves something rather than nothing.
            terms = tokenize::tokenize(query);
        }
        let mut scores: HashMap<DocId, f64> = HashMap::new();
        for term in &terms {
            let Some(postings) = self.postings.get(term) else {
                continue;
            };
            let idf = self.idf(term);
            for p in postings {
                let dl = f64::from(self.doc_lengths[p.doc.0 as usize]);
                let tf = f64::from(p.term_freq);
                let denom = tf
                    + self.params.k1
                        * (1.0 - self.params.b + self.params.b * dl / self.avg_doc_len.max(1.0));
                let contrib = idf * tf * (self.params.k1 + 1.0) / denom;
                *scores.entry(p.doc).or_insert(0.0) += contrib;
            }
        }
        let mut hits: Vec<SearchHit> = scores
            .into_iter()
            .map(|(doc, score)| SearchHit { doc, score })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.doc.cmp(&b.doc))
        });
        hits.truncate(k);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_index() -> InvertedIndex {
        let mut idx = InvertedIndex::new();
        idx.add_document("the quick brown fox jumps over the lazy dog");
        idx.add_document("a quick reference to rust programming");
        idx.add_document("the dog barks at the brown cat");
        idx.finalize();
        idx
    }

    #[test]
    fn search_ranks_more_relevant_first() {
        let idx = small_index();
        let hits = idx.search("brown dog", 3);
        // Both doc0 and doc2 contain "brown" and "dog"; doc2 is shorter, so
        // BM25 length normalization ranks it first. doc1 contains neither.
        assert_eq!(hits[0].doc, DocId(2));
        assert_eq!(hits.len(), 2);
        assert!(hits[0].score >= hits[1].score);
    }

    #[test]
    fn doc_freq_and_idf() {
        let idx = small_index();
        assert_eq!(idx.doc_freq("quick"), 2);
        assert_eq!(idx.doc_freq("rust"), 1);
        assert_eq!(idx.doc_freq("zebra"), 0);
        assert!(idx.idf("rust") > idx.idf("quick"));
        assert!(idx.idf("the") > 0.0, "idf stays positive for common terms");
    }

    #[test]
    fn search_respects_k() {
        let idx = small_index();
        let hits = idx.search("the", 1);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn stop_word_only_query_still_matches() {
        let idx = small_index();
        assert!(!idx.search("the", 3).is_empty());
    }

    #[test]
    fn unknown_terms_return_empty() {
        let idx = small_index();
        assert!(idx.search("xylophone quartz", 5).is_empty());
    }

    #[test]
    fn term_frequency_boosts_score() {
        let mut idx = InvertedIndex::new();
        idx.add_document("rust rust rust rust");
        idx.add_document("rust and other topics");
        idx.finalize();
        let hits = idx.search("rust", 2);
        assert_eq!(hits[0].doc, DocId(0));
    }

    #[test]
    fn num_terms_counts_vocabulary() {
        let idx = small_index();
        assert!(idx.num_terms() >= 10);
    }
}
