//! Tokenization shared by the search index and the QA pipeline.
//!
//! The tokenizer lowercases input and splits on any non-alphanumeric
//! character, mirroring the simple analyzers used by Apache Nutch/Lucene
//! `StandardTokenizer` for English web text.

/// A token together with its byte offset in the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Lowercased token text.
    pub text: String,
    /// Byte offset of the token start in the original string.
    pub offset: usize,
    /// Position of the token in the token stream (0-based).
    pub position: usize,
}

/// Splits `text` into lowercase alphanumeric tokens.
///
/// # Example
///
/// ```
/// let toks = sirius_search::tokenize::tokenize("Who was elected 44th president?");
/// assert_eq!(toks, vec!["who", "was", "elected", "44th", "president"]);
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    tokenize_with_offsets(text)
        .into_iter()
        .map(|t| t.text)
        .collect()
}

/// Splits `text` into tokens, retaining byte offsets and stream positions.
pub fn tokenize_with_offsets(text: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut start: Option<usize> = None;
    let push = |tokens: &mut Vec<Token>, start: usize, end: usize| {
        let text: String = text[start..end]
            .chars()
            .flat_map(char::to_lowercase)
            .collect();
        let position = tokens.len();
        tokens.push(Token {
            text,
            offset: start,
            position,
        });
    };
    for (i, c) in text.char_indices() {
        if c.is_alphanumeric() {
            if start.is_none() {
                start = Some(i);
            }
        } else if let Some(s) = start.take() {
            push(&mut tokens, s, i);
        }
    }
    if let Some(s) = start {
        push(&mut tokens, s, text.len());
    }
    tokens
}

/// English stop words filtered out of search queries (but *not* of indexed
/// documents, so phrase filters in the QA pipeline can still see them).
pub const STOP_WORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "has", "he", "in", "is", "it",
    "its", "of", "on", "that", "the", "to", "was", "were", "will", "with", "who", "what", "when",
    "where", "which", "how", "why",
];

/// Returns `true` if `word` (already lowercased) is an English stop word.
pub fn is_stop_word(word: &str) -> bool {
    STOP_WORDS.contains(&word)
}

/// Tokenizes and removes stop words; used for building search queries.
pub fn content_tokens(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter(|t| !is_stop_word(t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_basic() {
        assert_eq!(tokenize("Hello, World!"), vec!["hello", "world"]);
    }

    #[test]
    fn tokenize_numbers_and_mixed() {
        assert_eq!(
            tokenize("44th president (2008)"),
            vec!["44th", "president", "2008"]
        );
    }

    #[test]
    fn tokenize_empty_and_punct_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("?!., --").is_empty());
    }

    #[test]
    fn offsets_point_at_sources() {
        let toks = tokenize_with_offsets("ab  cd");
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 4);
        assert_eq!(toks[1].position, 1);
    }

    #[test]
    fn unicode_is_handled() {
        let toks = tokenize("Zürich café");
        assert_eq!(toks, vec!["zürich", "café"]);
    }

    #[test]
    fn content_tokens_drop_stop_words() {
        assert_eq!(
            content_tokens("What is the capital of Italy?"),
            vec!["capital", "italy"]
        );
    }
}
