//! # sirius-search
//!
//! An in-memory web-search substrate standing in for Apache Nutch in the
//! Sirius reproduction (Hauswald et al., ASPLOS 2015).
//!
//! The paper compares the computational demand of an average Sirius IPA query
//! against a traditional browser-based web-search query served by Apache
//! Nutch (Section 3, Figure 7a). This crate provides:
//!
//! * a [`tokenize`] module with the shared tokenizer,
//! * an [`index`] module implementing an inverted index with BM25 ranking,
//! * a [`corpus`] module that procedurally generates a *fact corpus*: web-like
//!   documents containing facts ("Rome is the capital of Italy") padded with
//!   filler prose, so that the question-answering pipeline in `sirius-nlp`
//!   has a realistic document collection to retrieve from and filter.
//!
//! # Example
//!
//! ```
//! use sirius_search::{corpus::FactCorpus, SearchEngine};
//!
//! let corpus = FactCorpus::generate(42, Default::default());
//! let engine = SearchEngine::build(corpus.documents().iter().map(|d| d.text.as_str()));
//! let hits = engine.search("capital of Italy", 5);
//! assert!(!hits.is_empty());
//! ```

#![warn(missing_docs)]

pub mod corpus;
pub mod index;
pub mod tokenize;

pub use corpus::{CorpusConfig, Fact, FactCorpus, FactKind};
pub use index::{merge_hits, CollectionStats, DocId, InvertedIndex, SearchHit};

/// A ready-to-query search engine over a document collection.
///
/// This is the "web search" that both the scalability-gap experiment
/// (Figure 7a) and the OpenEphyra-style QA pipeline issue queries against.
#[derive(Debug)]
pub struct SearchEngine {
    index: InvertedIndex,
}

impl SearchEngine {
    /// Builds a search engine by indexing every document in `docs`.
    pub fn build<'a, I>(docs: I) -> Self
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut index = InvertedIndex::new();
        for doc in docs {
            index.add_document(doc);
        }
        index.finalize();
        Self { index }
    }

    /// Runs a free-text query and returns up to `k` ranked hits.
    pub fn search(&self, query: &str, k: usize) -> Vec<SearchHit> {
        self.index.search(query, k)
    }

    /// Returns the indexed document text for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this engine.
    pub fn document(&self, id: DocId) -> &str {
        self.index.document(id)
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.index.num_documents()
    }

    /// Whether the engine contains no documents.
    pub fn is_empty(&self) -> bool {
        self.index.num_documents() == 0
    }

    /// Access to the underlying inverted index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// Builds shard `shard` of `num_shards` of this engine: the posting
    /// lists are partitioned by document id while the document store and
    /// global collection statistics are carried whole, so per-shard search
    /// results [`merge_hits`] back into exactly the unsharded results. See
    /// [`InvertedIndex::shard`].
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is zero or `shard >= num_shards`.
    pub fn shard(&self, shard: u32, num_shards: u32) -> SearchEngine {
        SearchEngine {
            index: self.index.shard(shard, num_shards),
        }
    }

    /// Snapshot of the global collection statistics shards score against.
    pub fn collection_stats(&self) -> CollectionStats {
        self.index.collection_stats()
    }

    /// Serializes the engine (the document collection; the inverted index
    /// is rebuilt on load).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = sirius_codec::Encoder::new();
        e.tag("sirius_search_v1");
        let docs: Vec<&str> = (0..self.index.num_documents())
            .map(|i| self.index.document(DocId(i as u32)))
            .collect();
        e.str_slice(&docs);
        e.into_bytes()
    }

    /// Restores an engine saved with [`SearchEngine::to_bytes`].
    ///
    /// # Errors
    ///
    /// Fails on malformed or truncated bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, sirius_codec::DecodeError> {
        let mut d = sirius_codec::Decoder::new(bytes);
        d.tag("sirius_search_v1")?;
        let docs = d.str_vec()?;
        d.finish()?;
        Ok(Self::build(docs.iter().map(String::as_str)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_finds_relevant_document() {
        let engine = SearchEngine::build([
            "Rome is the capital of Italy",
            "Paris is the capital of France",
            "The mitochondria is the powerhouse of the cell",
        ]);
        let hits = engine.search("capital Italy", 2);
        assert_eq!(hits[0].doc, DocId(0));
    }

    #[test]
    fn persistence_round_trips_search_results() {
        let engine = SearchEngine::build(["Rome is the capital of Italy", "filler text here"]);
        let restored = SearchEngine::from_bytes(&engine.to_bytes()).expect("decode");
        assert_eq!(restored.len(), engine.len());
        assert_eq!(
            restored.search("capital italy", 2),
            engine.search("capital italy", 2)
        );
    }

    #[test]
    fn empty_engine_is_empty() {
        let engine = SearchEngine::build(std::iter::empty::<&str>());
        assert!(engine.is_empty());
        assert!(engine.search("anything", 3).is_empty());
    }
}
