//! Synthetic fact corpus generation.
//!
//! The original Sirius issues OpenEphyra's generated queries against live web
//! search. That substrate is not reproducible offline, so we generate a
//! web-like corpus of documents around a closed set of *facts* (capitals,
//! authors, presidents, locations, landmark opening hours). Each fact is
//! rendered through several sentence templates, embedded in documents padded
//! with filler prose and distractor sentences, which gives the QA document
//! filters realistic, query-dependent hit counts (paper Figure 8c).

use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The relation a fact expresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FactKind {
    /// `subject` country has `answer` capital city.
    CapitalOf,
    /// `subject` work was written by `answer`.
    AuthorOf,
    /// `subject` (e.g. "44th president of the United States") is `answer`.
    PresidentOrdinal,
    /// `subject` place is located in `answer` region.
    LocationOf,
    /// `subject` venue closes at `answer` (time), used by voice-image queries.
    ClosingTime,
}

impl FactKind {
    /// All fact kinds, in a stable order.
    pub const ALL: [FactKind; 5] = [
        FactKind::CapitalOf,
        FactKind::AuthorOf,
        FactKind::PresidentOrdinal,
        FactKind::LocationOf,
        FactKind::ClosingTime,
    ];
}

/// A ground-truth fact in the knowledge base.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fact {
    /// Relation kind.
    pub kind: FactKind,
    /// Subject entity, e.g. `"Italy"`.
    pub subject: String,
    /// Answer entity, e.g. `"Rome"`.
    pub answer: String,
}

impl Fact {
    fn new(kind: FactKind, subject: &str, answer: &str) -> Self {
        Self {
            kind,
            subject: subject.to_owned(),
            answer: answer.to_owned(),
        }
    }

    /// Renders this fact as a declarative sentence, choosing among several
    /// templates with `variant` (wraps around).
    pub fn render(&self, variant: usize) -> String {
        let s = &self.subject;
        let a = &self.answer;
        let templates: Vec<String> = match self.kind {
            FactKind::CapitalOf => vec![
                format!("{a} is the capital of {s}."),
                format!("The capital city of {s} is {a}."),
                format!("{s} has its capital at {a}, a city of great history."),
            ],
            FactKind::AuthorOf => vec![
                format!("{a} is the author of {s}."),
                format!("{s} was written by {a}."),
                format!("The celebrated series {s} comes from the pen of {a}."),
            ],
            FactKind::PresidentOrdinal => vec![
                format!("{a} was elected {s}."),
                format!("The {s} is {a}."),
                format!("{a} served as the {s}."),
            ],
            FactKind::LocationOf => vec![
                format!("{s} is located in {a}."),
                format!("{s} lies in {a}."),
                format!("You will find {s} in {a}."),
            ],
            FactKind::ClosingTime => vec![
                format!("{s} closes at {a}."),
                format!("The closing time of {s} is {a}."),
                format!("{s} is open until {a} every day."),
            ],
        };
        templates[variant % templates.len()].clone()
    }
}

/// Built-in knowledge base shared by the corpus and the end-to-end query set.
///
/// Kept deliberately aligned with the paper's voice-query input set
/// (Table 2: "Where is Las Vegas?", "What is the capital of Italy?",
/// "Who is the author of Harry Potter?", ...).
pub fn knowledge_base() -> Vec<Fact> {
    use FactKind::*;
    vec![
        Fact::new(CapitalOf, "Italy", "Rome"),
        Fact::new(CapitalOf, "Cuba", "Havana"),
        Fact::new(CapitalOf, "France", "Paris"),
        Fact::new(CapitalOf, "Japan", "Tokyo"),
        Fact::new(CapitalOf, "Canada", "Ottawa"),
        Fact::new(CapitalOf, "Australia", "Canberra"),
        Fact::new(CapitalOf, "Egypt", "Cairo"),
        Fact::new(CapitalOf, "Brazil", "Brasilia"),
        Fact::new(AuthorOf, "Harry Potter", "Joanne Rowling"),
        Fact::new(AuthorOf, "War and Peace", "Leo Tolstoy"),
        Fact::new(AuthorOf, "The Odyssey", "Homer"),
        Fact::new(AuthorOf, "Hamlet", "William Shakespeare"),
        Fact::new(
            PresidentOrdinal,
            "44th president of the United States",
            "Barack Obama",
        ),
        Fact::new(
            PresidentOrdinal,
            "first president of the United States",
            "George Washington",
        ),
        Fact::new(
            PresidentOrdinal,
            "16th president of the United States",
            "Abraham Lincoln",
        ),
        Fact::new(LocationOf, "Las Vegas", "Nevada"),
        Fact::new(LocationOf, "the Eiffel Tower", "Paris"),
        Fact::new(LocationOf, "Mount Fuji", "Japan"),
        Fact::new(LocationOf, "the Grand Canyon", "Arizona"),
        Fact::new(ClosingTime, "Luigi Trattoria", "10 pm"),
        Fact::new(ClosingTime, "Sakura Sushi House", "11 pm"),
        Fact::new(ClosingTime, "Blue Bottle Cafe", "6 pm"),
        Fact::new(ClosingTime, "Golden Gate Diner", "midnight"),
        Fact::new(ClosingTime, "Crown Books", "9 pm"),
        Fact::new(ClosingTime, "Harbor Grill", "10 pm"),
        Fact::new(ClosingTime, "Maple Leaf Bakery", "5 pm"),
        Fact::new(ClosingTime, "Casa Verde Cantina", "11 pm"),
        Fact::new(ClosingTime, "Union Square Market", "8 pm"),
        Fact::new(ClosingTime, "Riverside Tea House", "7 pm"),
    ]
}

/// Configuration for corpus generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusConfig {
    /// How many documents to generate per fact (each uses different
    /// templates and filler, like independent web pages).
    pub docs_per_fact: usize,
    /// Pure-filler distractor documents containing no fact.
    pub filler_docs: usize,
    /// Filler sentences padded around each fact sentence.
    pub filler_sentences_per_doc: usize,
    /// Probability that a document also embeds one unrelated fact, creating
    /// cross-talk for the document filters.
    pub distractor_fact_prob: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            docs_per_fact: 4,
            filler_docs: 60,
            filler_sentences_per_doc: 12,
            distractor_fact_prob: 0.35,
        }
    }
}

/// A generated document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// Full document text.
    pub text: String,
    /// Index into the knowledge base of the primary fact, if any.
    pub fact: Option<usize>,
}

/// A procedurally generated web-like corpus over the built-in knowledge base.
#[derive(Debug, Clone)]
pub struct FactCorpus {
    facts: Vec<Fact>,
    documents: Vec<Document>,
}

const FILLER_SUBJECTS: &[&str] = &[
    "the committee",
    "a recent study",
    "the local museum",
    "this weekend's festival",
    "the city council",
    "an early review",
    "the research group",
    "a visiting scholar",
    "the weather service",
    "the transit authority",
];

const FILLER_VERBS: &[&str] = &[
    "announced",
    "considered",
    "reviewed",
    "discussed",
    "postponed",
    "celebrated",
    "documented",
    "measured",
    "described",
    "questioned",
];

const FILLER_OBJECTS: &[&str] = &[
    "a new exhibition downtown",
    "the seasonal schedule",
    "several community projects",
    "the annual budget report",
    "an unusual pattern in the data",
    "the renovation of the old library",
    "a series of public lectures",
    "changes to the evening program",
    "the history of the region",
    "an archive of old photographs",
];

fn filler_sentence(rng: &mut impl Rng) -> String {
    let s = FILLER_SUBJECTS.choose(rng).expect("non-empty");
    let v = FILLER_VERBS.choose(rng).expect("non-empty");
    let o = FILLER_OBJECTS.choose(rng).expect("non-empty");
    let mut sentence = format!("{s} {v} {o}.");
    // Capitalize first letter for document realism.
    if let Some(first) = sentence.get_mut(0..1) {
        let upper = first.to_uppercase();
        sentence.replace_range(0..1, &upper);
    }
    sentence
}

impl FactCorpus {
    /// Generates a corpus with the built-in knowledge base.
    pub fn generate(seed: u64, config: CorpusConfig) -> Self {
        Self::generate_with_facts(seed, config, knowledge_base())
    }

    /// Generates a corpus over caller-provided facts.
    pub fn generate_with_facts(seed: u64, config: CorpusConfig, facts: Vec<Fact>) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut documents = Vec::new();
        for (fi, fact) in facts.iter().enumerate() {
            for variant in 0..config.docs_per_fact {
                let mut sentences: Vec<String> = (0..config.filler_sentences_per_doc)
                    .map(|_| filler_sentence(&mut rng))
                    .collect();
                let insert_at = rng.gen_range(0..=sentences.len());
                sentences.insert(insert_at, fact.render(variant));
                if rng.gen_bool(config.distractor_fact_prob) && facts.len() > 1 {
                    let mut other = rng.gen_range(0..facts.len());
                    if other == fi {
                        other = (other + 1) % facts.len();
                    }
                    let at = rng.gen_range(0..=sentences.len());
                    sentences.insert(at, facts[other].render(rng.gen_range(0..3)));
                }
                documents.push(Document {
                    text: sentences.join(" "),
                    fact: Some(fi),
                });
            }
        }
        for _ in 0..config.filler_docs {
            let sentences: Vec<String> = (0..config.filler_sentences_per_doc)
                .map(|_| filler_sentence(&mut rng))
                .collect();
            documents.push(Document {
                text: sentences.join(" "),
                fact: None,
            });
        }
        documents.shuffle(&mut rng);
        Self { facts, documents }
    }

    /// The knowledge base this corpus was generated from.
    pub fn facts(&self) -> &[Fact] {
        &self.facts
    }

    /// All generated documents.
    pub fn documents(&self) -> &[Document] {
        &self.documents
    }

    /// Looks up the ground-truth answer for `(kind, subject)`, if present.
    pub fn answer_for(&self, kind: FactKind, subject: &str) -> Option<&str> {
        self.facts
            .iter()
            .find(|f| f.kind == kind && f.subject.eq_ignore_ascii_case(subject))
            .map(|f| f.answer.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = FactCorpus::generate(7, CorpusConfig::default());
        let b = FactCorpus::generate(7, CorpusConfig::default());
        assert_eq!(a.documents(), b.documents());
    }

    #[test]
    fn different_seeds_differ() {
        let a = FactCorpus::generate(1, CorpusConfig::default());
        let b = FactCorpus::generate(2, CorpusConfig::default());
        assert_ne!(a.documents(), b.documents());
    }

    #[test]
    fn every_fact_has_documents() {
        let cfg = CorpusConfig::default();
        let corpus = FactCorpus::generate(3, cfg);
        for fi in 0..corpus.facts().len() {
            let n = corpus
                .documents()
                .iter()
                .filter(|d| d.fact == Some(fi))
                .count();
            assert_eq!(n, cfg.docs_per_fact, "fact {fi} underrepresented");
        }
    }

    #[test]
    fn answers_are_retrievable() {
        let corpus = FactCorpus::generate(3, CorpusConfig::default());
        assert_eq!(
            corpus.answer_for(FactKind::CapitalOf, "italy"),
            Some("Rome")
        );
        assert_eq!(
            corpus.answer_for(FactKind::AuthorOf, "Harry Potter"),
            Some("Joanne Rowling")
        );
        assert_eq!(corpus.answer_for(FactKind::CapitalOf, "atlantis"), None);
    }

    #[test]
    fn fact_sentences_appear_in_documents() {
        let corpus = FactCorpus::generate(5, CorpusConfig::default());
        let rome_docs = corpus
            .documents()
            .iter()
            .filter(|d| d.text.contains("Rome"))
            .count();
        assert!(rome_docs >= CorpusConfig::default().docs_per_fact);
    }

    #[test]
    fn render_variants_cycle() {
        let fact = Fact::new(FactKind::CapitalOf, "Italy", "Rome");
        assert_eq!(fact.render(0), fact.render(3));
        assert_ne!(fact.render(0), fact.render(1));
    }
}
