//! # sirius-cache
//!
//! A sharded, lock-striped keyed cache for the Sirius serving stack.
//!
//! The paper's warehouse-scale argument (Figs. 17–19, Table 8) is that
//! per-query backend compute dominates the cost of a voice/vision assistant,
//! so anything that *deflects* load changes the provisioning math directly.
//! Real query streams are heavily repeated (Zipf-shaped popularity), which
//! makes a keyed result cache the cheapest accelerator in the stack: a hit
//! answers in microseconds what Classify→IMM→QA answers in tens of
//! milliseconds. This crate is that building block — `sirius-server` wires
//! two instances in front of the post-ASR stages (a QA answer cache keyed by
//! normalized recognized text, and an IMM cache keyed by the ANN match
//! signature).
//!
//! Design:
//!
//! * **Lock-striped shards.** Keys hash (deterministic SipHash-1-3 with
//!   fixed keys) to one of a power-of-two number of shards, each behind its
//!   own `Mutex`. Concurrent readers/writers on different shards never
//!   contend; the per-shard critical section is a couple of map operations.
//! * **Bounded LRU per shard.** Each shard holds at most
//!   `capacity / shards` entries; inserting past the bound evicts the
//!   least-recently-used entry (order maintained in a `BTreeMap` side index,
//!   O(log n) per touch).
//! * **TTL.** Entries may carry a time-to-live; a lapsed entry is removed at
//!   read time and counted as `stale`, and the read reports a miss.
//! * **Generation stamping.** The cache carries a global generation counter;
//!   every entry is stamped with the generation current at insert.
//!   [`Cache::invalidate_all`] bumps the generation in one atomic store —
//!   O(1), no locks — and every pre-bump entry becomes unreadable (removed
//!   lazily at the next touch, counted as `stale`). This is what makes
//!   "no stale read after invalidation" a hard guarantee rather than a
//!   best-effort sweep.
//! * **Counters via `sirius-obs`.** `hit` / `miss` / `eviction` / `stale` /
//!   `insert` counters and an `entries` gauge register into the shared
//!   [`Registry`](sirius_obs::Registry) so cache behaviour shows up in the
//!   same snapshot as the serving stages it deflects load from.

#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use sirius_obs::{Counter, Gauge, Registry};

/// Sizing and lifetime policy for a [`Cache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total entry budget across all shards. Each shard is bounded at
    /// `ceil(capacity / shards)`, so the live entry count never exceeds
    /// `capacity` rounded up to a multiple of the shard count.
    pub capacity: usize,
    /// Number of lock stripes; rounded up to the next power of two, and at
    /// least 1. More shards → less contention, slightly looser LRU (the
    /// recency order is per-shard, not global).
    pub shards: usize,
    /// Optional time-to-live. `None` means entries live until evicted or
    /// invalidated.
    pub ttl: Option<Duration>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            capacity: 1024,
            shards: 8,
            ttl: None,
        }
    }
}

impl CacheConfig {
    /// Config with the given total capacity and the default shard count.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity,
            ..Self::default()
        }
    }

    /// Sets the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the time-to-live.
    pub fn with_ttl(mut self, ttl: Duration) -> Self {
        self.ttl = Some(ttl);
        self
    }
}

/// Cache activity counters, registered in a shared [`Registry`] under a
/// caller-chosen prefix (e.g. `cache.qa.hit`).
///
/// Handles are cheap lock-free clones; an unregistered instance (from
/// [`CacheObs::unregistered`]) still counts but is not exported anywhere.
#[derive(Debug, Clone)]
pub struct CacheObs {
    /// Reads that returned a live value.
    pub hit: Counter,
    /// Reads that found nothing usable (absent, lapsed, or invalidated).
    pub miss: Counter,
    /// Entries displaced by the per-shard LRU bound.
    pub eviction: Counter,
    /// Entries discarded at read time because their TTL lapsed or their
    /// generation predates an [`Cache::invalidate_all`]. Every `stale` read
    /// is also counted as a `miss`.
    pub stale: Counter,
    /// Successful inserts (including overwrites of an existing key).
    pub insert: Counter,
    /// Current live entry count across all shards.
    pub entries: Gauge,
}

impl CacheObs {
    /// Registers the counters under `{prefix}.hit`, `{prefix}.miss`,
    /// `{prefix}.eviction`, `{prefix}.stale`, `{prefix}.insert`,
    /// `{prefix}.entries`.
    pub fn register(registry: &Registry, prefix: &str) -> Self {
        let name = |leaf: &str| format!("{prefix}.{leaf}");
        Self {
            hit: registry.counter(&name("hit")),
            miss: registry.counter(&name("miss")),
            eviction: registry.counter(&name("eviction")),
            stale: registry.counter(&name("stale")),
            insert: registry.counter(&name("insert")),
            entries: registry.gauge(&name("entries")),
        }
    }

    /// Counters not attached to any registry (still functional).
    pub fn unregistered() -> Self {
        Self {
            hit: Counter::default(),
            miss: Counter::default(),
            eviction: Counter::default(),
            stale: Counter::default(),
            insert: Counter::default(),
            entries: Gauge::default(),
        }
    }

    /// Hit ratio over all completed lookups, `None` before the first lookup.
    pub fn hit_ratio(&self) -> Option<f64> {
        let hits = self.hit.get();
        let total = hits + self.miss.get();
        (total > 0).then(|| hits as f64 / total as f64)
    }
}

struct Entry<V> {
    value: V,
    /// Generation current when the entry was inserted.
    generation: u64,
    /// Absolute expiry instant, if the cache has a TTL.
    expires: Option<Instant>,
    /// Recency stamp; key into the shard's `order` index.
    touched: u64,
}

struct Shard<K, V> {
    map: HashMap<K, Entry<V>>,
    /// LRU side index: recency stamp → key. The smallest stamp is the
    /// least-recently-used entry.
    order: BTreeMap<u64, K>,
    /// Monotone per-shard recency clock.
    clock: u64,
}

impl<K: Hash + Eq + Clone, V> Shard<K, V> {
    fn new() -> Self {
        Self {
            map: HashMap::new(),
            order: BTreeMap::new(),
            clock: 0,
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn remove(&mut self, key: &K) -> Option<Entry<V>> {
        let entry = self.map.remove(key)?;
        self.order.remove(&entry.touched);
        Some(entry)
    }

    fn evict_lru(&mut self) -> bool {
        if let Some((&stamp, key)) = self.order.iter().next() {
            let key = key.clone();
            self.order.remove(&stamp);
            self.map.remove(&key);
            true
        } else {
            false
        }
    }
}

/// A sharded, lock-striped, bounded-LRU keyed cache with TTL and O(1)
/// generation-based invalidation. See the crate docs for the design.
pub struct Cache<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    /// `shards.len() - 1`; shard count is a power of two so this is a mask.
    shard_mask: usize,
    per_shard_capacity: usize,
    ttl: Option<Duration>,
    generation: AtomicU64,
    obs: CacheObs,
}

impl<K: Hash + Eq + Clone, V: Clone> Cache<K, V> {
    /// Builds a cache with unregistered counters.
    pub fn new(config: CacheConfig) -> Self {
        Self::with_obs(config, CacheObs::unregistered())
    }

    /// Builds a cache whose counters were registered by the caller (see
    /// [`CacheObs::register`]).
    pub fn with_obs(config: CacheConfig, obs: CacheObs) -> Self {
        let shards = config.shards.max(1).next_power_of_two();
        let per_shard_capacity = config.capacity.div_ceil(shards).max(1);
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            shard_mask: shards - 1,
            per_shard_capacity,
            ttl: config.ttl,
            generation: AtomicU64::new(0),
            obs,
        }
    }

    fn shard_for(&self, key: &K) -> &Mutex<Shard<K, V>> {
        // DefaultHasher::new() is SipHash-1-3 with fixed keys — deterministic
        // across processes, unlike a `RandomState`-built map hasher.
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) & self.shard_mask]
    }

    /// Looks up `key`. A lapsed-TTL or invalidated entry is removed, counted
    /// as `stale`, and reported as a miss.
    pub fn get(&self, key: &K) -> Option<V> {
        let generation = self.generation.load(Ordering::Acquire);
        let mut shard = self
            .shard_for(key)
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let usable = match shard.map.get(key) {
            None => {
                self.obs.miss.inc();
                return None;
            }
            Some(entry) => {
                entry.generation == generation
                    && entry.expires.is_none_or(|expires| Instant::now() < expires)
            }
        };
        if !usable {
            shard.remove(key);
            self.obs.entries.dec();
            self.obs.stale.inc();
            self.obs.miss.inc();
            return None;
        }
        // Touch: move the entry to the most-recent end of the order index.
        let stamp = shard.tick();
        let entry = shard.map.get_mut(key).expect("entry checked above");
        let old = std::mem::replace(&mut entry.touched, stamp);
        let value = entry.value.clone();
        shard.order.remove(&old);
        shard.order.insert(stamp, key.clone());
        self.obs.hit.inc();
        Some(value)
    }

    /// Inserts (or overwrites) `key`, evicting the shard's LRU entry if the
    /// shard is at capacity.
    pub fn insert(&self, key: K, value: V) {
        let generation = self.generation.load(Ordering::Acquire);
        let expires = self.ttl.map(|ttl| Instant::now() + ttl);
        let mut shard = self
            .shard_for(&key)
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if shard.remove(&key).is_some() {
            self.obs.entries.dec();
        }
        while shard.map.len() >= self.per_shard_capacity {
            if !shard.evict_lru() {
                break;
            }
            self.obs.entries.dec();
            self.obs.eviction.inc();
        }
        let stamp = shard.tick();
        shard.order.insert(stamp, key.clone());
        shard.map.insert(
            key,
            Entry {
                value,
                generation,
                expires,
                touched: stamp,
            },
        );
        self.obs.entries.inc();
        self.obs.insert.inc();
    }

    /// Invalidates every entry in O(1) by bumping the generation. Entries
    /// inserted before the bump can never be read again; they are removed
    /// lazily (counted `stale`) when next touched, or displaced by LRU.
    pub fn invalidate_all(&self) {
        self.generation.fetch_add(1, Ordering::AcqRel);
    }

    /// The current generation (starts at 0, +1 per [`Self::invalidate_all`]).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Live entry count across all shards (includes entries that are lapsed
    /// or invalidated but not yet lazily removed).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).map.len())
            .sum()
    }

    /// True when no shard holds any entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Upper bound on [`Self::len`]: per-shard capacity × shard count.
    pub fn capacity(&self) -> usize {
        self.per_shard_capacity * self.shards.len()
    }

    /// The cache's activity counters.
    pub fn obs(&self) -> &CacheObs {
        &self.obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    fn small(capacity: usize, shards: usize) -> Cache<String, u64> {
        Cache::new(CacheConfig {
            capacity,
            shards,
            ttl: None,
        })
    }

    #[test]
    fn hit_miss_and_counters() {
        let cache = small(8, 1);
        assert_eq!(cache.get(&"a".to_string()), None);
        cache.insert("a".into(), 1);
        assert_eq!(cache.get(&"a".to_string()), Some(1));
        cache.insert("a".into(), 2);
        assert_eq!(cache.get(&"a".to_string()), Some(2));
        assert_eq!(cache.obs().hit.get(), 2);
        assert_eq!(cache.obs().miss.get(), 1);
        assert_eq!(cache.obs().insert.get(), 2);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.obs().entries.get(), 1);
        assert_eq!(cache.obs().hit_ratio(), Some(2.0 / 3.0));
    }

    #[test]
    fn lru_eviction_order() {
        let cache = small(2, 1);
        cache.insert("a".into(), 1);
        cache.insert("b".into(), 2);
        // Touch "a" so "b" becomes the LRU entry.
        assert_eq!(cache.get(&"a".to_string()), Some(1));
        cache.insert("c".into(), 3);
        assert_eq!(cache.get(&"b".to_string()), None, "LRU entry evicted");
        assert_eq!(cache.get(&"a".to_string()), Some(1));
        assert_eq!(cache.get(&"c".to_string()), Some(3));
        assert_eq!(cache.obs().eviction.get(), 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn ttl_lapse_counts_stale() {
        // A TTL no scheduler stall can plausibly cross: the entry must
        // still be live on the first read.
        let generous: Cache<String, u64> = Cache::new(CacheConfig {
            capacity: 8,
            shards: 1,
            ttl: Some(Duration::from_secs(3600)),
        });
        generous.insert("a".into(), 1);
        assert_eq!(generous.get(&"a".to_string()), Some(1));
        assert_eq!(generous.obs().stale.get(), 0);

        // And a TTL that has always lapsed by read time.
        let instant: Cache<String, u64> = Cache::new(CacheConfig {
            capacity: 8,
            shards: 1,
            ttl: Some(Duration::from_nanos(1)),
        });
        instant.insert("a".into(), 1);
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(instant.get(&"a".to_string()), None, "TTL lapsed");
        assert_eq!(instant.obs().stale.get(), 1);
        assert!(instant.is_empty(), "lapsed entry removed at read");
    }

    #[test]
    fn invalidate_all_is_total() {
        let cache = small(64, 4);
        for i in 0..32u64 {
            cache.insert(format!("k{i}"), i);
        }
        assert_eq!(cache.generation(), 0);
        cache.invalidate_all();
        assert_eq!(cache.generation(), 1);
        for i in 0..32u64 {
            assert_eq!(cache.get(&format!("k{i}")), None);
        }
        assert_eq!(cache.obs().stale.get(), 32);
        assert!(cache.is_empty());
        // Post-invalidation inserts are readable again.
        cache.insert("k0".into(), 99);
        assert_eq!(cache.get(&"k0".to_string()), Some(99));
    }

    #[test]
    fn bounded_memory_under_churn() {
        let cache = small(32, 4);
        let bound = cache.capacity();
        for i in 0..10_000u64 {
            cache.insert(format!("k{i}"), i);
            assert!(
                cache.len() <= bound,
                "len {} > bound {}",
                cache.len(),
                bound
            );
        }
        let obs = cache.obs();
        assert_eq!(
            obs.insert.get() - obs.eviction.get() - obs.stale.get(),
            cache.len() as u64,
            "entry accounting balances"
        );
        assert_eq!(obs.entries.get(), cache.len() as u64);
    }

    /// Multi-producer stress: writers churn keys and periodically invalidate;
    /// readers must never observe a value inserted before the invalidation
    /// they already saw. Values encode the generation they were written
    /// under, so a stale read is directly detectable.
    #[test]
    fn no_stale_read_after_invalidation() {
        const KEYS: u64 = 64;
        const WRITERS: usize = 4;
        const READERS: usize = 4;
        let cache: Arc<Cache<u64, u64>> = Arc::new(Cache::new(CacheConfig {
            capacity: 256,
            shards: 8,
            ttl: None,
        }));
        let stop = Arc::new(AtomicBool::new(false));
        let violations = Arc::new(AtomicU64::new(0));

        let mut handles = Vec::new();
        for w in 0..WRITERS {
            let cache = Arc::clone(&cache);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut i = w as u64;
                while !stop.load(Ordering::Relaxed) {
                    // Value stamps the generation current at write time.
                    let generation = cache.generation();
                    cache.insert(i % KEYS, generation);
                    if i.is_multiple_of(257) {
                        cache.invalidate_all();
                    }
                    i += 1;
                }
            }));
        }
        for _ in 0..READERS {
            let cache = Arc::clone(&cache);
            let stop = Arc::clone(&stop);
            let violations = Arc::clone(&violations);
            handles.push(std::thread::spawn(move || {
                let mut k = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Order matters: read the generation *before* the lookup.
                    // Any value returned must be from a generation >= it —
                    // i.e. nothing from before an invalidation we already
                    // observed can ever surface.
                    let floor = cache.generation();
                    if let Some(written_at) = cache.get(&(k % KEYS)) {
                        if written_at < floor {
                            violations.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    k += 1;
                }
            }));
        }
        std::thread::sleep(Duration::from_millis(200));
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            violations.load(Ordering::Relaxed),
            0,
            "stale reads observed"
        );
        assert!(cache.len() <= cache.capacity());
        assert!(cache.obs().hit.get() > 0, "stress exercised the hit path");
        assert!(cache.obs().stale.get() > 0, "stress exercised invalidation");
    }

    #[test]
    fn registered_counters_export() {
        let registry = Registry::new();
        let cache: Cache<String, u64> = Cache::with_obs(
            CacheConfig::with_capacity(8),
            CacheObs::register(&registry, "cache.qa"),
        );
        cache.insert("where is pete's?".into(), 7);
        cache.get(&"where is pete's?".to_string());
        cache.get(&"unknown".to_string());
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("cache.qa.hit"), Some(1));
        assert_eq!(snapshot.counter("cache.qa.miss"), Some(1));
        assert_eq!(snapshot.counter("cache.qa.insert"), Some(1));
        assert_eq!(snapshot.gauge("cache.qa.entries"), Some(1));
    }
}
